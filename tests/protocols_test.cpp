// Protocol substrate: channels, consensus, dynamic ledger
// (protocols/*).

#include <gtest/gtest.h>

#include "impl/balance.hpp"
#include "pca/check.hpp"
#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/consensus.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

TEST(Channel, ReliableDeliversInOrder) {
  auto ch = make_channel("pt_a");
  State q = ch->start_state();
  q = ch->transition(q, act("send1_pt_a")).support()[0];
  const Signature sig = ch->signature(q);
  EXPECT_TRUE(sig.is_output(act("recv1_pt_a")));
  EXPECT_FALSE(sig.contains(act("send0_pt_a")));  // one slot
  q = ch->transition(q, act("recv1_pt_a")).support()[0];
  EXPECT_TRUE(ch->signature(q).is_input(act("send0_pt_a")));
}

TEST(Channel, LossyDropsWithExactProbability) {
  auto ch = make_lossy_channel("pt_b", Rational(2, 3));
  const StateDist d =
      ch->transition(ch->start_state(), act("send0_pt_b"));
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_EQ(d.mass(ch->start_state()), Rational(1, 3));  // dropped
}

TEST(Channel, LossyDeliveryProbabilityObservable) {
  auto ch = make_lossy_channel("pt_c", Rational(3, 4));
  SequenceScheduler word({act("send0_pt_c"), act("recv0_pt_c")});
  EXPECT_EQ(exact_action_probability(*ch, word, act("recv0_pt_c"), 4),
            Rational(3, 4));
}

TEST(Consensus, ValidityUnderAgreement) {
  auto c = make_benor_consensus("pt_d");
  SequenceScheduler word({act("proposeA1_pt_d"), act("proposeB1_pt_d"),
                          act("round_pt_d"), act("decide1_pt_d")});
  EXPECT_EQ(exact_action_probability(*c, word, act("decide1_pt_d"), 8),
            Rational(1));
  // The other value is never decided under agreement on 1.
  SequenceScheduler word0({act("proposeA1_pt_d"), act("proposeB1_pt_d"),
                           act("round_pt_d"), act("decide0_pt_d")});
  EXPECT_EQ(exact_action_probability(*c, word0, act("decide0_pt_d"), 8),
            Rational(0));
}

TEST(Consensus, AgreementNeverDecidesBothValues) {
  // Across every execution of the uniform schedule, at most one decide
  // action appears.
  auto c = make_benor_consensus("pt_e");
  UniformScheduler sched(10);
  for_each_halted_execution(
      *c, sched, 12, [&](const ExecFragment& alpha, const Rational&) {
        int decides = 0;
        for (ActionId a : alpha.actions()) {
          if (a == act("decide0_pt_e") || a == act("decide1_pt_e")) {
            ++decides;
          }
        }
        EXPECT_LE(decides, 1);
      });
}

TEST(Consensus, DisagreementDecidesUniformly) {
  auto c = make_ideal_consensus("pt_f");
  SequenceScheduler w0({act("proposeA0_pt_f"), act("proposeB1_pt_f"),
                        act("pick_pt_f"), act("decide0_pt_f")});
  EXPECT_EQ(exact_action_probability(*c, w0, act("decide0_pt_f"), 8),
            Rational(1, 2));
}

TEST(Consensus, BenOrRoundFailureIsGeometric) {
  auto c = make_benor_consensus("pt_g");
  // After disagreement, each round resolves with probability 1/2; the
  // decision value is fair. With budget for r rounds (2 proposals +
  // r rounds + 1 decide), P[decide0] = (1 - 2^-r) / 2.
  for (int rounds = 1; rounds <= 4; ++rounds) {
    PriorityScheduler sched(
        {act("proposeA0_pt_g"), act("proposeB1_pt_g"), act("round_pt_g"),
         act("decide0_pt_g")},
        static_cast<std::size_t>(rounds) + 3);
    EXPECT_EQ(
        exact_action_probability(*c, sched, act("decide0_pt_g"), 16),
        (Rational(1) - Rational(1, 1 << rounds)) * Rational(1, 2))
        << "rounds=" << rounds;
  }
}

TEST(Consensus, BenOrImplementsIdealWithGeometricEpsilon) {
  // The only observable difference under an r-round budget is the 2^-r
  // chance that BenOrLite is still undecided: epsilon = 2^-(r+1) on the
  // decide-0 perception.
  auto benor = make_benor_consensus("pt_h");
  auto ideal = make_ideal_consensus("pt_i");
  for (int rounds = 1; rounds <= 4; ++rounds) {
    PriorityScheduler wb({act("proposeA0_pt_h"), act("proposeB1_pt_h"),
                          act("round_pt_h"), act("decide0_pt_h")},
                         static_cast<std::size_t>(rounds) + 3);
    PriorityScheduler wi({act("proposeA0_pt_i"), act("proposeB1_pt_i"),
                          act("pick_pt_i"), act("decide0_pt_i")},
                         4);
    AcceptInsight fb(act("decide0_pt_h"));
    AcceptInsight fi(act("decide0_pt_i"));
    const auto db = exact_fdist(*benor, wb, fb, 16);
    const auto di = exact_fdist(*ideal, wi, fi, 16);
    const Rational eps = balance_distance(db, di);
    EXPECT_EQ(eps, Rational(1, 2) * Rational(1, 1 << rounds))
        << "rounds=" << rounds;
  }
}

TEST(Ledger, DynamicPcaPassesConstraints) {
  const LedgerSystem sys = make_ledger_system(2, "pt_j");
  const PcaCheckResult res = check_pca_constraints(*sys.dynamic, 7);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(Ledger, DynamicAndStaticTracesCoincideExactly) {
  // E9's core claim: run-time creation/destruction is externally
  // indistinguishable from the static composition. Locally controlled
  // scheduling only: the static listeners' not-yet-wired open inputs
  // must not fire as ghost stimuli.
  const LedgerSystem sys = make_ledger_system(2, "pt_k");
  UniformScheduler sched(6, /*local_only=*/true);
  TraceInsight f;
  const auto dyn = exact_fdist(*sys.dynamic, sched, f, 8);
  const auto stat = exact_fdist(*sys.static_spec, sched, f, 8);
  EXPECT_EQ(balance_distance(dyn, stat), Rational(0));
}

TEST(Ledger, DrivenDynamicAndStaticCoincide) {
  // Compose with a driver that actually exercises tx/close (creation AND
  // destruction paths), then compare the closed systems.
  const LedgerSystem sys = make_ledger_system(2, "pt_q");
  auto mk_driver = [] {
    auto d = std::make_shared<ExplicitPsioa>("pt_q_driver");
    const std::vector<ActionId> script{act("tx1_pt_q"), act("ack1_pt_q"),
                                       act("close1_pt_q"),
                                       act("tx2_pt_q")};
    std::vector<State> states;
    for (std::size_t i = 0; i <= script.size(); ++i) {
      states.push_back(d->add_state("d" + std::to_string(i)));
    }
    d->set_start(states[0]);
    for (std::size_t i = 0; i < script.size(); ++i) {
      Signature sig;
      if (ActionTable::instance().name(script[i]).rfind("ack", 0) == 0) {
        sig.in = {script[i]};
      } else {
        sig.out = {script[i]};
      }
      d->set_signature(states[i], sig);
      d->add_step(states[i], script[i], states[i + 1]);
    }
    d->set_signature(states.back(), Signature{});
    d->validate();
    return d;
  };
  auto dyn_sys = compose(mk_driver(), sys.dynamic);
  auto stat_sys = compose(mk_driver(), sys.static_spec);
  UniformScheduler sched(10, /*local_only=*/true);
  TraceInsight f;
  const auto dyn = exact_fdist(*dyn_sys, sched, f, 12);
  const auto stat = exact_fdist(*stat_sys, sched, f, 12);
  EXPECT_EQ(balance_distance(dyn, stat), Rational(0));
}

TEST(Ledger, SubchainLifecycle) {
  auto sub = make_subchain(1, "pt_l", /*dynamic_variant=*/true);
  State q = sub->start_state();
  EXPECT_EQ(sub->state_label(q), "live");
  q = sub->transition(q, act("tx1_pt_l")).support()[0];
  EXPECT_TRUE(sub->signature(q).is_output(act("ack1_pt_l")));
  q = sub->transition(q, act("ack1_pt_l")).support()[0];
  q = sub->transition(q, act("close1_pt_l")).support()[0];
  EXPECT_TRUE(sub->signature(q).empty());  // destruction sentinel
}

TEST(Ledger, StaticSubchainWaitsForOpen) {
  auto sub = make_subchain(1, "pt_m", /*dynamic_variant=*/false);
  State q = sub->start_state();
  EXPECT_EQ(sub->state_label(q), "waiting");
  EXPECT_FALSE(sub->signature(q).contains(act("tx1_pt_m")));
  q = sub->transition(q, act("open1_pt_m")).support()[0];
  EXPECT_TRUE(sub->signature(q).is_input(act("tx1_pt_m")));
}

TEST(Ledger, ParentOpensInOrder) {
  auto parent = make_parent_chain(3, "pt_n", "_t");
  State q = parent->start_state();
  for (int i = 1; i <= 3; ++i) {
    const std::string open = "open" + std::to_string(i) + "_pt_n";
    EXPECT_TRUE(parent->signature(q).is_output(act(open)));
    q = parent->transition(q, act(open)).support()[0];
  }
  EXPECT_FALSE(parent->signature(q).empty());  // idles, not destroyed
}

TEST(Ledger, ReopenAfterCloseRecreatesSubchain) {
  // Creation policy is guarded by presence; a parent that opens the same
  // chain twice after a close recreates it.
  auto reg = std::make_shared<AutomatonRegistry>();
  auto parent = std::make_shared<ExplicitPsioa>("pt_o_parent");
  const ActionId a_open = act("open1_pt_o");
  const State s0 = parent->add_state("s0");
  parent->set_start(s0);
  Signature sig;
  sig.out = {a_open};
  parent->set_signature(s0, sig);
  parent->add_step(s0, a_open, s0);  // can open repeatedly
  parent->validate();
  const Aid p = reg->add(parent);
  const Aid s = reg->add(make_subchain(1, "pt_o", true));
  CreationPolicy cp = [s, a_open](const Configuration& cfg, ActionId a) {
    std::vector<Aid> phi;
    if (a == a_open && !cfg.contains(s)) phi.push_back(s);
    return phi;
  };
  DynamicPca x("pt_o_pca", reg, {p}, cp, no_hiding());
  State q = x.start_state();
  q = x.transition(q, a_open).support()[0];
  EXPECT_TRUE(x.config(q).contains(s));
  q = x.transition(q, act("close1_pt_o")).support()[0];
  EXPECT_FALSE(x.config(q).contains(s));
  q = x.transition(q, a_open).support()[0];  // recreate
  EXPECT_TRUE(x.config(q).contains(s));
  EXPECT_EQ(x.config(q).state_of(s), reg->aut(s).start_state());
}

// Trace equivalence of dynamic vs static ledgers across sizes.
class LedgerSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LedgerSizes, DynamicEqualsStatic) {
  const std::uint32_t n = GetParam();
  const LedgerSystem sys =
      make_ledger_system(n, "pt_p" + std::to_string(n));
  UniformScheduler sched(5, /*local_only=*/true);
  TraceInsight f;
  const auto dyn = exact_fdist(*sys.dynamic, sched, f, 6);
  const auto stat = exact_fdist(*sys.static_spec, sched, f, 6);
  EXPECT_EQ(balance_distance(dyn, stat), Rational(0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LedgerSizes, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace cdse
