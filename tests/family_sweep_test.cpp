// <=_{neg,pt} family sweeps (impl/family_sweep.hpp; Def 4.12).

#include "impl/family_sweep.hpp"

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "protocols/environment.hpp"
#include "secure/adversary.hpp"
#include "psioa/compose.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

/// E_k || MAC_k with the canonical forgery distinguisher; `real` selects
/// the side.
PsioaFamily mac_side_family(const std::string& base, bool real) {
  return PsioaFamily{
      base + (real ? "_real" : "_ideal"),
      [base, real](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(k, tag);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv = make_sink_adversary(tag + "_adv", {},
                                       acts({"forge_" + tag}));
        const StructuredPsioa& side = real ? pair.real : pair.ideal;
        return compose(env, compose(side.ptr(), adv));
      }};
}

SchedulerFamily mac_word_family(const std::string& base) {
  return SchedulerFamily{
      "word", [base](std::uint32_t k) -> SchedulerPtr {
        const std::string tag = base + std::to_string(k);
        return std::make_shared<SequenceScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                  act("forged_" + tag), act("acc_" + tag)},
            /*local_only=*/true);
      }};
}

TEST(FamilySweep, MacEpsilonIsExactlyTwoToMinusKAcrossK) {
  const std::string base = "fs_a";
  ThreadPool pool(2);
  const std::vector<std::uint32_t> ks{1, 2, 3, 4, 5, 6};
  const FamilySweepReport report = family_epsilon_sweep(
      mac_side_family(base, true), mac_side_family(base, false),
      mac_word_family(base), TraceInsight(), ks, 12,
      /*exact_upto=*/6, /*trials=*/0, /*seed=*/1, pool);
  ASSERT_EQ(report.rows.size(), ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    ASSERT_TRUE(report.rows[i].exact.has_value());
    EXPECT_EQ(*report.rows[i].exact,
              Rational(1, static_cast<std::int64_t>(1) << ks[i]))
        << "k=" << ks[i];
  }
  EXPECT_TRUE(report.negligible_looking);
  EXPECT_NEAR(report.fitted_exponent, 1.0, 1e-9);
}

TEST(FamilySweep, SampledRowsCarryErrorRadius) {
  const std::string base = "fs_b";
  ThreadPool pool(2);
  const std::vector<std::uint32_t> ks{1, 2, 3};
  const FamilySweepReport report = family_epsilon_sweep(
      mac_side_family(base, true), mac_side_family(base, false),
      mac_word_family(base), TraceInsight(), ks, 12,
      /*exact_upto=*/1, /*trials=*/20000, /*seed=*/7, pool);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_TRUE(report.rows[0].exact.has_value());
  EXPECT_FALSE(report.rows[1].exact.has_value());
  EXPECT_GT(report.rows[1].radius, 0.0);
  EXPECT_NEAR(report.rows[1].sampled, 0.25, 0.02);
  EXPECT_NEAR(report.rows[2].sampled, 0.125, 0.02);
}

TEST(FamilySweep, ConstantGapFamilyIsNotNegligible) {
  // A family whose advantage does not decay must be rejected.
  const std::string base = "fs_c";
  PsioaFamily real{
      "const_real", [base](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(1, tag);  // fixed k=1
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv = make_sink_adversary(tag + "_adv", {},
                                       acts({"forge_" + tag}));
        return compose(env, compose(pair.real.ptr(), adv));
      }};
  PsioaFamily ideal{
      "const_ideal", [base](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(1, tag);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv = make_sink_adversary(tag + "_adv2", {},
                                       acts({"forge_" + tag}));
        return compose(env, compose(pair.ideal.ptr(), adv));
      }};
  ThreadPool pool(2);
  const std::vector<std::uint32_t> ks{1, 2, 3, 4};
  const FamilySweepReport report = family_epsilon_sweep(
      real, ideal, mac_word_family(base), TraceInsight(), ks, 12, 4, 0, 1,
      pool);
  EXPECT_FALSE(report.negligible_looking);
  for (const auto& row : report.rows) {
    ASSERT_TRUE(row.exact.has_value());
    EXPECT_EQ(*row.exact, Rational(1, 2));
  }
}

}  // namespace
}  // namespace cdse
