// Dynamic MAC session service (crypto/service.hpp): secure emulation
// with run-time creation/destruction of protocol sessions.

#include "crypto/service.hpp"

#include <gtest/gtest.h>

#include "pca/check.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

SchedulerPtr word(std::vector<ActionId> w) {
  return std::make_shared<SequenceScheduler>(std::move(w), true);
}

TEST(MacService, PcaConstraintsHoldOnBothSides) {
  const MacServicePair svc = make_mac_service_pair({2, 3}, "sv_a");
  EXPECT_TRUE(check_pca_constraints(*svc.real_pca, 6).ok);
  EXPECT_TRUE(check_pca_constraints(*svc.ideal_pca, 6).ok);
}

TEST(MacService, StructuredVocabulariesValidate) {
  const MacServicePair svc = make_mac_service_pair({2}, "sv_b");
  EXPECT_NO_THROW(svc.real.validate(8));
  EXPECT_NO_THROW(svc.ideal.validate(8));
}

TEST(MacService, SessionsAreCreatedOnOpenAndDestroyedWhenDone) {
  const MacServicePair svc = make_mac_service_pair({1}, "sv_c");
  DynamicPca& x = *svc.real_pca;
  State q = x.start_state();
  EXPECT_EQ(x.config(q).size(), 1u);  // hub only
  q = x.transition(q, act("open_sv_c_0")).support()[0];
  EXPECT_EQ(x.config(q).size(), 2u);  // session spawned
  q = x.transition(q, act("auth_sv_c_0")).support()[0];
  // forge: the session moves to win/lose, both of which still live.
  const StateDist d = x.transition(q, act("forge_sv_c_0"));
  for (State q2 : d.support()) {
    EXPECT_EQ(x.config(q2).size(), 2u);
    // Resolve the outcome: after reporting, the session reaches "done"
    // (empty signature) and is garbage-collected by reduce().
    const Signature sig = x.signature(q2);
    for (ActionId a : sig.out) {
      const State q3 = x.transition(q2, a).support()[0];
      EXPECT_EQ(x.config(q3).size(), 1u) << "session not destroyed";
    }
  }
}

TEST(MacService, ReopenSpawnsFreshSession) {
  const MacServicePair svc = make_mac_service_pair({1}, "sv_d");
  DynamicPca& x = *svc.ideal_pca;
  State q = x.start_state();
  q = x.transition(q, act("open_sv_d_0")).support()[0];
  q = x.transition(q, act("auth_sv_d_0")).support()[0];
  q = x.transition(q, act("forge_sv_d_0")).support()[0];   // -> lose
  q = x.transition(q, act("rejected_sv_d_0")).support()[0];  // destroyed
  EXPECT_EQ(x.config(q).size(), 1u);
  q = x.transition(q, act("open_sv_d_0")).support()[0];  // fresh session
  EXPECT_EQ(x.config(q).size(), 2u);
  EXPECT_TRUE(x.signature(q).is_input(act("auth_sv_d_0")));
}

TEST(MacService, DynamicSecureEmulationEpsilonPerSession) {
  const MacServicePair svc = make_mac_service_pair({2, 3}, "sv_e");
  const PsioaPtr adv = make_sink_adversary(
      "sv_e_adv", {}, acts({"forge_sv_e_0", "forge_sv_e_1"}));
  // Environment scripts: open session i, auth, watch forged_i.
  std::vector<LabeledScheduler> scheds;
  std::vector<LabeledPsioa> envs;
  const ActionId acc = act("acc_sv_e");
  envs.push_back(
      {"probe",
       make_probe_env("env_sv_e",
                      {act("open_sv_e_0"), act("auth_sv_e_0"),
                       act("open_sv_e_1"), act("auth_sv_e_1")},
                      acts({"forged_sv_e_0", "forged_sv_e_1",
                            "rejected_sv_e_0", "rejected_sv_e_1"}),
                      acc)});
  scheds.push_back(
      {"attack0", word({act("open_sv_e_0"), act("auth_sv_e_0"),
                        act("forge_sv_e_0"), act("forged_sv_e_0"), acc})});
  scheds.push_back(
      {"attack1", word({act("open_sv_e_0"), act("auth_sv_e_0"),
                        act("open_sv_e_1"), act("auth_sv_e_1"),
                        act("forge_sv_e_1"), act("forged_sv_e_1"), acc})});
  const EmulationReport report = check_secure_emulation(
      svc.real, adv, svc.ideal, adv, envs, scheds, same_scheduler(),
      AcceptInsight(acc), 16);
  ASSERT_EQ(report.impl.rows.size(), 2u);
  EXPECT_EQ(report.impl.rows[0].eps, svc.session_advantages[0]);  // 1/4
  EXPECT_EQ(report.impl.rows[1].eps, svc.session_advantages[1]);  // 1/8
  EXPECT_EQ(report.max_eps, Rational(1, 4));
}

TEST(MacService, AdversaryCheckPassesForService) {
  const MacServicePair svc = make_mac_service_pair({2}, "sv_f");
  const PsioaPtr adv =
      make_sink_adversary("sv_f_adv", {}, acts({"forge_sv_f_0"}));
  EXPECT_TRUE(check_adversary_for(svc.real, adv, 6).ok);
  EXPECT_TRUE(check_adversary_for(svc.ideal, adv, 6).ok);
}

}  // namespace
}  // namespace cdse
