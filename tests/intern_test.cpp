// Arena-backed state interning: unit + differential + concurrency suite.
//
// Three layers:
//   units        -- Arena chunk growth / pointer stability / alignment,
//                   StateInterner dense handles, round-trips, rehash
//                   behaviour, and the length-seeded hash (the retired
//                   ComposedPsioa::TupleHash ignored tuple arity).
//   differential -- the same automaton stacks built on Backend::kMap (the
//                   legacy node-based interners' shape) and Backend::kArena
//                   must be indistinguishable: identical exact f-dists,
//                   draw-for-draw identical fixed-seed executions (handles
//                   included -- both backends assign dense handles in
//                   discovery order), bitwise-identical sampled f-dists,
//                   and identical results through freeze()/SnapshotPsioa.
//                   Covered stacks: random composed, hidden+renamed,
//                   structured MAC, PCA ledger, faulty channel, crashable,
//                   byzantine.
//   concurrency  -- the ActionTable shared-lock intern fast path hammered
//                   from 8 threads (run under TSan by scripts/check.sh
//                   --tsan), plus a DynamicPca regression pinning that
//                   transitions stay valid while interning grows under
//                   them (the defensive Configuration copy this PR
//                   removed).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/byzantine.hpp"
#include "fault/crash.hpp"
#include "fault/faulty.hpp"
#include "pca/dynamic_pca.hpp"
#include "protocols/channel.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/memo.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "util/state_interner.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

// ------------------------------------------------------------ arena units

TEST(ArenaTest, PointerStabilityAcrossChunkGrowth) {
  Arena arena(64);  // tiny first chunk: growth is exercised immediately
  std::vector<std::pair<std::uint64_t*, std::uint64_t>> cells;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    auto* p = static_cast<std::uint64_t*>(
        arena.allocate(sizeof(std::uint64_t), alignof(std::uint64_t)));
    *p = i * 0x9e3779b97f4a7c15ULL;
    cells.emplace_back(p, *p);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  for (const auto& [p, expected] : cells) EXPECT_EQ(*p, expected);
  EXPECT_GE(arena.bytes_used(), 4096 * sizeof(std::uint64_t));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, AlignmentHonored) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.allocate(3, align);  // odd size forces misalignment
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align;
    }
  }
  // Fresh-chunk path: a tiny arena can never satisfy these in place, so
  // every request lands at the start of a new chunk, whose base operator
  // new aligns only to 16 -- the alignment fixup must happen on the
  // address itself.
  Arena tiny(16);
  for (int i = 0; i < 8; ++i) {
    void* p = tiny.allocate(24, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "i=" << i;
  }
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnChunk) {
  Arena arena(64);
  void* big = arena.allocate(Arena::kMaxChunkBytes + 100, 8);
  ASSERT_NE(big, nullptr);
  // Still usable after: bump allocation continues on fresh chunks.
  void* small = arena.allocate(8, 8);
  ASSERT_NE(small, nullptr);
  EXPECT_GE(arena.bytes_reserved(), Arena::kMaxChunkBytes + 100);
}

// --------------------------------------------------------- interner units

TEST(StateInternerTest, DenseHandlesInDiscoveryOrder) {
  StateInterner in(StateInterner::Backend::kArena);
  const std::uint64_t a[] = {1, 2, 3};
  const std::uint64_t b[] = {4, 5};
  const std::uint64_t c[] = {1, 2, 4};
  EXPECT_EQ(in.intern_tuple(a, 3), 0u);
  EXPECT_EQ(in.intern_tuple(b, 2), 1u);
  EXPECT_EQ(in.intern_tuple(c, 3), 2u);
  EXPECT_EQ(in.size(), 3u);
  // Duplicates return the original handle, in any order.
  EXPECT_EQ(in.intern_tuple(c, 3), 2u);
  EXPECT_EQ(in.intern_tuple(a, 3), 0u);
  EXPECT_EQ(in.intern_tuple(b, 2), 1u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(StateInternerTest, TupleRoundTrip) {
  StateInterner in(StateInterner::Backend::kArena);
  std::vector<std::vector<std::uint64_t>> keys;
  Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint64_t> k(1 + rng.below(6));
    for (auto& w : k) w = rng();
    const StateInterner::Handle h = in.intern_tuple(k);
    if (h == keys.size()) keys.push_back(k);
  }
  for (std::size_t h = 0; h < keys.size(); ++h) {
    const TupleRef t = in.tuple(h);
    ASSERT_EQ(t.size(), keys[h].size());
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], keys[h][i]);
  }
}

TEST(StateInternerTest, BytesRoundTrip) {
  StateInterner in(StateInterner::Backend::kArena);
  const std::string s1 = "hello";
  const std::string s2 = "hello world, a longer key crossing the pad";
  const auto h1 = in.intern_bytes(s1.data(), s1.size());
  const auto h2 = in.intern_bytes(s2.data(), s2.size());
  EXPECT_NE(h1, h2);
  const auto [p1, n1] = in.key(h1);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p1), n1), s1);
  const auto [p2, n2] = in.key(h2);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p2), n2), s2);
  EXPECT_EQ(in.intern_bytes(s1.data(), s1.size()), h1);
}

TEST(StateInternerTest, UnknownHandleThrows) {
  StateInterner in;
  EXPECT_THROW(in.key(0), std::out_of_range);
  const std::uint64_t w[] = {7};
  (void)in.intern_tuple(w, 1);
  EXPECT_NO_THROW(in.tuple(0));
  EXPECT_THROW(in.tuple(1), std::out_of_range);
}

TEST(StateInternerTest, RehashPreservesHandlesAndKeys) {
  StateInterner in(StateInterner::Backend::kArena);
  std::vector<std::vector<std::uint64_t>> keys;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    keys.push_back({i * 3, i ^ 0xabcdef, i});
    ASSERT_EQ(in.intern_tuple(keys.back()), i);
  }
  EXPECT_GT(in.stats().rehashes, 0u);
  // Pointers handed out before the rehashes still identify the keys, and
  // every handle re-interns to itself.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(in.intern_tuple(keys[i]), i);
    const TupleRef t = in.tuple(i);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], keys[i][0]);
  }
}

TEST(StateInternerTest, ReserveAvoidsMidWalkRehashes) {
  StateInterner in(StateInterner::Backend::kArena);
  in.reserve(10000);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t w[] = {i, ~i};
    (void)in.intern_tuple(w, 2);
  }
  EXPECT_EQ(in.stats().rehashes, 0u);
  EXPECT_EQ(in.size(), 10000u);
}

TEST(StateInternerTest, HashMixesTupleLength) {
  // Satellite fix: the retired TupleHash folded words but not arity, so
  // all-zero tuples of every length collided. The interner hash seeds
  // with the length: distinct lengths must give distinct hashes *and*
  // distinct handles.
  const std::uint64_t zeros[4] = {0, 0, 0, 0};
  std::vector<std::uint64_t> hashes;
  for (std::size_t n = 0; n <= 4; ++n) {
    hashes.push_back(StateInterner::hash_tuple(zeros, n));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << "lengths " << i << " vs " << j;
    }
  }
  StateInterner in(StateInterner::Backend::kArena);
  for (std::size_t n = 0; n <= 4; ++n) {
    EXPECT_EQ(in.intern_tuple(zeros, n), n);
  }
  EXPECT_EQ(in.size(), 5u);
}

TEST(StateInternerTest, MapBackendAssignsIdenticalHandles) {
  StateInterner arena(StateInterner::Backend::kArena);
  StateInterner map(StateInterner::Backend::kMap);
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint64_t> k(1 + rng.below(4));
    for (auto& w : k) w = rng.below(50);  // collisions guaranteed
    ASSERT_EQ(arena.intern_tuple(k), map.intern_tuple(k));
  }
  EXPECT_EQ(arena.size(), map.size());
  for (StateInterner::Handle h = 0; h < arena.size(); ++h) {
    const TupleRef ta = arena.tuple(h);
    const TupleRef tm = map.tuple(h);
    ASSERT_EQ(ta.size(), tm.size());
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tm[i]);
  }
}

TEST(StateInternerTest, ArenaHalvesMapBackendFootprint) {
  // The tentpole's memory claim at unit scale: identical key load, the
  // arena backend must hold less than half the bytes of the map-shaped
  // baseline (one inline copy vs node + string copy + word-vector copy).
  StateInterner arena(StateInterner::Backend::kArena);
  StateInterner map(StateInterner::Backend::kMap);
  arena.reserve(4096);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t w[] = {i, i * 31};
    (void)arena.intern_tuple(w, 2);
    (void)map.intern_tuple(w, 2);
  }
  const InternStats sa = arena.stats();
  const InternStats sm = map.stats();
  EXPECT_EQ(sa.keys, sm.keys);
  EXPECT_GT(sa.arena_chunks, 0u);
  EXPECT_GE(sm.arena_bytes, 2 * sa.arena_bytes)
      << "arena=" << sa.arena_bytes << " map=" << sm.arena_bytes;
}

TEST(StateInternerTest, StatsCountLookupsAndProbes) {
  StateInterner in(StateInterner::Backend::kArena);
  const std::uint64_t w[] = {1, 2};
  (void)in.intern_tuple(w, 2);
  (void)in.intern_tuple(w, 2);
  const InternStats s = in.stats();
  EXPECT_EQ(s.keys, 1u);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_GE(s.probes, 2u);
  EXPECT_GT(s.arena_bytes, 0u);
}

// ------------------------------------------------- differential stacks

constexpr std::size_t kFdistDepth = 4;
constexpr std::size_t kSampleDepth = 8;
constexpr std::size_t kTrials = 400;

/// Scoped process-default backend flip (restores on scope exit).
class BackendGuard {
 public:
  explicit BackendGuard(StateInterner::Backend b)
      : prev_(StateInterner::default_backend()) {
    StateInterner::set_default_backend(b);
  }
  ~BackendGuard() { StateInterner::set_default_backend(prev_); }

 private:
  StateInterner::Backend prev_;
};

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

PsioaFactory crashable_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    return make_crashable(make_channel(tag), 3);
  };
}

PsioaFactory byzantine_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    return std::make_shared<ByzantinePsioa>(
        make_channel(tag),
        make_flip_involution({{act("recv0_" + tag), act("recv1_" + tag)}}),
        Rational(1, 3));
  };
}

ExactDisc<Perception> exact_of(Psioa& sys) {
  UniformScheduler sched(kFdistDepth);
  TraceInsight f;
  return exact_fdist(sys, sched, f, kFdistDepth + 1);
}

Disc<Perception, double> sampled_of(Psioa& sys, std::uint64_t seed) {
  UniformScheduler sched(kSampleDepth);
  TraceInsight f;
  return sample_fdist(sys, sched, f, kTrials, seed, kSampleDepth);
}

/// One backend's observation of a stack: exact f-dist, 12 fixed-seed
/// executions (handles included), and a sampled f-dist.
struct Observation {
  ExactDisc<Perception> exact;
  std::vector<ExecFragment> runs;
  Disc<Perception, double> sampled;
};

Observation observe(const PsioaFactory& fa, StateInterner::Backend backend,
                    std::uint64_t seed) {
  BackendGuard guard(backend);
  Observation obs;
  PsioaPtr sys = fa();
  obs.exact = exact_of(*sys);
  for (int t = 0; t < 12; ++t) {
    UniformScheduler sched(kSampleDepth);
    Xoshiro256 rng(seed + t);
    obs.runs.push_back(sample_execution(*sys, sched, rng, kSampleDepth));
  }
  obs.sampled = sampled_of(*sys, seed);
  return obs;
}

/// The differential core: a stack built on the legacy map-shaped backend
/// and on the arena backend must agree exactly, draw for draw, handle for
/// handle (both assign dense handles in discovery order).
void expect_backends_agree(const PsioaFactory& fa, std::uint64_t seed) {
  const Observation m = observe(fa, StateInterner::Backend::kMap, seed);
  const Observation a = observe(fa, StateInterner::Backend::kArena, seed);
  EXPECT_EQ(m.exact, a.exact);
  ASSERT_EQ(m.runs.size(), a.runs.size());
  for (std::size_t t = 0; t < m.runs.size(); ++t) {
    EXPECT_EQ(m.runs[t], a.runs[t]) << "trace " << t;
  }
  EXPECT_EQ(m.sampled, a.sampled);
}

/// Same comparison through the frozen-snapshot engine: prepare() (BFS
/// warm-up + freeze) and parallel sample_fdist must be backend-blind.
void expect_backends_agree_frozen(const PsioaFactory& fa,
                                  std::uint64_t seed) {
  auto run = [&fa, seed](StateInterner::Backend b) {
    BackendGuard guard(b);
    SchedulerFactory fs = [] {
      return std::make_shared<UniformScheduler>(kSampleDepth);
    };
    ParallelSampler sampler(fa, fs);
    WarmupPlan plan;
    plan.episodes = 8;
    plan.horizon = kSampleDepth;
    sampler.prepare(plan, kSampleDepth);
    ThreadPool pool(4);
    TraceInsight f;
    auto dist = sampler.sample_fdist(f, 1000, seed, kSampleDepth, pool);
    const InternStats st = sampler.residue_intern_stats();
    return std::make_pair(dist, st);
  };
  const auto [dist_map, st_map] = run(StateInterner::Backend::kMap);
  const auto [dist_arena, st_arena] = run(StateInterner::Backend::kArena);
  EXPECT_EQ(dist_map, dist_arena);
  // Both backends interned the same key set in the same order.
  EXPECT_EQ(st_map.keys, st_arena.keys);
  EXPECT_GT(st_arena.keys, 0u);
  EXPECT_GT(st_arena.arena_chunks, 0u);
  EXPECT_EQ(st_map.arena_chunks, 0u);
}

class InternBackendDifferential : public ::testing::TestWithParam<int> {};

TEST_P(InternBackendDifferential, ComposedStack) {
  const int n = GetParam();
  expect_backends_agree(composed_factory(n, "it_a" + std::to_string(n)),
                        5000 + n);
}

TEST_P(InternBackendDifferential, HiddenRenamedStack) {
  const int n = GetParam();
  expect_backends_agree(hidden_renamed_factory(n, "it_b" + std::to_string(n)),
                        6000 + n);
}

INSTANTIATE_TEST_SUITE_P(Random, InternBackendDifferential,
                         ::testing::Range(0, 4));

TEST(InternBackendStacks, StructuredSecureStack) {
  expect_backends_agree(mac_factory("it_mac"), 43);
}

TEST(InternBackendStacks, PcaLedgerStack) {
  expect_backends_agree(ledger_factory("it_led"), 11);
}

TEST(InternBackendStacks, FaultyChannelStack) {
  expect_backends_agree(faulty_channel_factory("it_fl"), 17);
}

TEST(InternBackendStacks, CrashableStack) {
  expect_backends_agree(crashable_factory("it_cr"), 19);
}

TEST(InternBackendStacks, ByzantineStack) {
  expect_backends_agree(byzantine_factory("it_bz"), 23);
}

TEST(InternBackendStacks, FrozenSnapshotComposed) {
  expect_backends_agree_frozen(composed_factory(3, "it_frz"), 29);
}

TEST(InternBackendStacks, FrozenSnapshotMac) {
  expect_backends_agree_frozen(mac_factory("it_frzm"), 31);
}

TEST(InternBackendStacks, FrozenSnapshotLedger) {
  expect_backends_agree_frozen(ledger_factory("it_frzl"), 37);
}

// ------------------------------------------------- growth-stability

TEST(InternGrowthStability, DynamicPcaTransitionsSurviveInterningGrowth) {
  // Regression for the removed defensive Configuration copy: with
  // memoization off, compute_transition holds a reference into the config
  // store across intern_config calls that grow it. Record every (q, a)
  // row while discovery is actively growing the interner, then re-derive
  // each after the full exploration: any instability (a reallocated slot,
  // a renumbered handle) changes the answer.
  auto pca = make_ledger_system(2, "ig").dynamic;
  pca->set_memoization(false);
  std::map<std::pair<State, ActionId>, StateDist> recorded;
  std::vector<State> frontier{pca->start_state()};
  std::map<State, bool> seen;
  seen[frontier[0]] = true;
  for (std::size_t depth = 0; depth < 6 && !frontier.empty(); ++depth) {
    std::vector<State> next;
    for (State q : frontier) {
      for (ActionId a : pca->signature(q).all()) {
        const StateDist eta = pca->transition(q, a);
        recorded.emplace(std::make_pair(q, a), eta);
        for (State q2 : eta.support()) {
          if (!seen[q2]) {
            seen[q2] = true;
            next.push_back(q2);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  ASSERT_GT(recorded.size(), 4u);
  for (const auto& [qa, eta] : recorded) {
    EXPECT_EQ(pca->transition(qa.first, qa.second), eta);
  }
}

TEST(InternGrowthStability, ComposedTupleViewsSurviveInterningGrowth) {
  // TupleRef views borrow arena storage: a view taken early must still
  // read the same words after thousands of later internings.
  BackendGuard guard(StateInterner::Backend::kArena);
  auto sys = std::dynamic_pointer_cast<ComposedPsioa>(
      composed_factory(5, "it_tv")());
  ASSERT_NE(sys, nullptr);
  const State q0 = sys->start_state();
  const TupleRef early = sys->tuple(q0);
  const std::vector<std::uint64_t> copy(early.begin(), early.end());
  // Drive discovery hard enough to force arena chunk growth and rehashes.
  UniformScheduler sched(16);
  Xoshiro256 rng(123);
  for (int t = 0; t < 200; ++t) {
    (void)sample_execution(*sys, sched, rng, 16);
  }
  ASSERT_EQ(early.size(), copy.size());
  for (std::size_t i = 0; i < copy.size(); ++i) EXPECT_EQ(early[i], copy[i]);
}

// ------------------------------------------------- concurrency (TSan)

TEST(InternConcurrency, ActionTableSharedLockIntern) {
  // 8 threads intern overlapping name sets through the shared-lock fast
  // path while some names are genuinely new (exclusive-lock inserts).
  // Run under TSan by scripts/check.sh --tsan. Correctness: every thread
  // sees one consistent id per name, and names round-trip.
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  constexpr int kReps = 400;
  std::vector<std::vector<ActionId>> ids(kThreads,
                                         std::vector<ActionId>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (int i = 0; i < kNames; ++i) {
          const std::string name = "conc_act_" + std::to_string(i);
          const ActionId id = ActionTable::instance().intern(name);
          if (rep == 0) {
            ids[t][i] = id;
          } else if (ids[t][i] != id) {
            ids[t][i] = kInvalidAction;  // flag inconsistency for main
          }
          // Exercise the read paths under contention too.
          (void)ActionTable::instance().lookup(name);
          (void)ActionTable::instance().name(id);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kNames; ++i) {
    const ActionId expected = ids[0][i];
    ASSERT_NE(expected, kInvalidAction);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][i], expected) << "thread " << t << " name " << i;
    }
    EXPECT_EQ(ActionTable::instance().name(expected),
              "conc_act_" + std::to_string(i));
    EXPECT_EQ(ActionTable::instance().lookup("conc_act_" + std::to_string(i)),
              expected);
  }
}

}  // namespace
}  // namespace cdse
