#pragma once
// Shared builders for the test suite.

#include <memory>
#include <string>

#include "psioa/explicit_psioa.hpp"
#include "util/rational.hpp"

namespace cdse::testing {

/// A one-shot emitter: outputs its single action once, then idles on a
/// self-loop input (so it is never "destroyed" inside configurations).
inline std::shared_ptr<ExplicitPsioa> make_emitter(const std::string& name,
                                                   const std::string& action) {
  auto e = std::make_shared<ExplicitPsioa>(name);
  const ActionId a = act(action);
  const State s0 = e->add_state("ready");
  const State s1 = e->add_state("spent");
  e->set_start(s0);
  Signature sig0;
  sig0.out = {a};
  e->set_signature(s0, sig0);
  e->set_signature(s1, Signature{});
  e->add_step(s0, a, s1);
  e->validate();
  return e;
}

/// A listener: consumes its single action forever.
inline std::shared_ptr<ExplicitPsioa> make_listener(const std::string& name,
                                                    const std::string& action) {
  auto l = std::make_shared<ExplicitPsioa>(name);
  const ActionId a = act(action);
  const State s0 = l->add_state("idle");
  l->set_start(s0);
  Signature sig;
  sig.in = {a};
  l->set_signature(s0, sig);
  l->add_step(s0, a, s0);
  l->validate();
  return l;
}

/// Bernoulli automaton: on (input) action `trigger`, moves to a state
/// emitting `yes` with probability p and `no` otherwise, then halts.
inline std::shared_ptr<ExplicitPsioa> make_bernoulli(
    const std::string& name, const std::string& trigger,
    const std::string& yes, const std::string& no, const Rational& p) {
  auto b = std::make_shared<ExplicitPsioa>(name);
  const ActionId a_t = act(trigger);
  const ActionId a_y = act(yes);
  const ActionId a_n = act(no);
  const State s0 = b->add_state("idle");
  const State sy = b->add_state("yes");
  const State sn = b->add_state("no");
  const State sd = b->add_state("done");
  b->set_start(s0);
  Signature sig0;
  sig0.in = {a_t};
  b->set_signature(s0, sig0);
  Signature sigy;
  sigy.out = {a_y};
  b->set_signature(sy, sigy);
  Signature sign;
  sign.out = {a_n};
  b->set_signature(sn, sign);
  b->set_signature(sd, Signature{});
  StateDist d;
  d.add(sy, p);
  d.add(sn, Rational(1) - p);
  b->add_transition(s0, a_t, d);
  b->add_step(sy, a_y, sd);
  b->add_step(sn, a_n, sd);
  b->validate();
  return b;
}

}  // namespace cdse::testing
