// Dynamic secure emulation and Theorem 4.30's composability construction
// (secure/emulation.hpp; Defs 4.26-4.27, Theorem 4.30).

#include "secure/emulation.hpp"

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/dummy.hpp"

namespace cdse {
namespace {

SchedulerPtr word(std::initializer_list<std::string> actions) {
  std::vector<ActionId> w;
  for (const auto& a : actions) w.push_back(act(a));
  return std::make_shared<SequenceScheduler>(std::move(w),
                                             /*local_only=*/true);
}

TEST(HiddenAdversaryComposition, InternalizesAdversaryVocabulary) {
  const RealIdealPair mac = make_otmac_pair(2, "em_a");
  const PsioaPtr adv =
      make_sink_adversary("em_a_adv", {}, acts({"forge_em_a"}));
  const PsioaPtr sys = hidden_adversary_composition(mac.real, adv);
  const Signature sig = sys->signature(sys->start_state());
  EXPECT_FALSE(sig.is_output(act("forge_em_a")));
  EXPECT_TRUE(sig.is_input(act("auth_em_a")));
}

TEST(SecureEmulation, MacEpsilonIsExactlyTwoToMinusK) {
  const std::string tag = "em_b";
  const RealIdealPair mac = make_otmac_pair(3, tag);
  const PsioaPtr adv =
      make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  const EmulationReport report = check_secure_emulation(
      mac.real, adv, mac.ideal, adv, {{"probe", env}},
      {{"word", word({"auth_" + tag, "forge_" + tag, "forged_" + tag,
                      "acc_" + tag})}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 12);
  EXPECT_EQ(report.max_eps, mac.exact_advantage);
  EXPECT_EQ(report.max_eps, Rational(1, 8));
}

TEST(SecureEmulation, OtpWithRelayEpsilonIsBias) {
  const std::string tag = "em_c";
  const RealIdealPair otp = make_otp_pair(3, tag);
  const PsioaPtr relay = make_relay_adversary(
      "relay_" + tag, {{act("cipher0_" + tag), act("tell0_" + tag)},
                       {act("cipher1_" + tag), act("tell1_" + tag)}});
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("send0_" + tag)}, acts({"tell0_" + tag}),
      act("tell1_" + tag), act("acc_" + tag));
  // Relay outputs (tell*) are not adversary actions of the OTP pair, so
  // they stay visible to the environment after hiding.
  const EmulationReport report = check_secure_emulation(
      otp.real, relay, otp.ideal, relay, {{"probe", env}},
      {{"uniform", std::make_shared<UniformScheduler>(10, true)}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 14);
  EXPECT_EQ(report.max_eps, otp.exact_advantage);
  EXPECT_EQ(report.max_eps, Rational(1, 8));
}

TEST(SecureEmulation, CommitmentEpsilonIsExact) {
  const std::string tag = "em_d";
  const RealIdealPair com = make_commitment_pair(2, tag);
  const PsioaPtr adv =
      make_sink_adversary(tag + "_adv", {}, acts({"flipcmd_" + tag}));
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("commit0_" + tag), act("reveal_" + tag)},
      acts({"open0_" + tag}), act("open1_" + tag), act("acc_" + tag));
  const EmulationReport report = check_secure_emulation(
      com.real, adv, com.ideal, adv, {{"probe", env}},
      {{"word", word({"commit0_" + tag, "flipcmd_" + tag, "reveal_" + tag,
                      "open1_" + tag, "acc_" + tag})}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 12);
  EXPECT_EQ(report.max_eps, Rational(1, 4));
}

TEST(SecureEmulation, PerfectPairEmulatesWithZero) {
  const std::string tag = "em_e";
  const RealIdealPair p = make_perfect_otp_pair(tag);
  const PsioaPtr relay = make_relay_adversary(
      "relay_" + tag, {{act("cipher0_" + tag), act("tell0_" + tag)},
                       {act("cipher1_" + tag), act("tell1_" + tag)}});
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("send0_" + tag)}, acts({"tell0_" + tag}),
      act("tell1_" + tag), act("acc_" + tag));
  const EmulationReport report = check_secure_emulation(
      p.real, relay, p.ideal, relay, {{"probe", env}},
      {{"uniform", std::make_shared<UniformScheduler>(10, true)}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 14);
  EXPECT_EQ(report.max_eps, Rational(0));
}

/// Theorem 4.30 scenario: two pairs composed, the composite adversary
/// speaking both command vocabularies, and an environment arming on
/// either break.
struct CompositeScenario {
  RealIdealPair mac;
  RealIdealPair com;
  StructuredPsioa real_hat;
  StructuredPsioa ideal_hat;
  PsioaPtr adv;
  PsioaPtr env;
  std::string tm, tc;

  explicit CompositeScenario(const std::string& base)
      : mac(make_otmac_pair(2, base + "m")),
        com(make_commitment_pair(3, base + "c")),
        real_hat(compose_structured(mac.real, com.real)),
        ideal_hat(compose_structured(mac.ideal, com.ideal)),
        tm(base + "m"),
        tc(base + "c") {
    adv = make_sink_adversary(
        base + "_adv", {},
        acts({"forge_" + tm, "flipcmd_" + tc}));
    env = make_probe_env(
        "env_" + base,
        {act("auth_" + tm), act("commit0_" + tc), act("reveal_" + tc)},
        acts({"forged_" + tm, "open1_" + tc}), act("acc_" + base));
  }
};

TEST(Theorem430, DirectSimulatorRespectsEpsilonBudget) {
  CompositeScenario sc("em_f");
  // Two distinguishing strategies, one per component.
  std::vector<LabeledScheduler> scheds;
  scheds.push_back({"attack-mac",
                    word({"auth_" + sc.tm, "forge_" + sc.tm,
                          "forged_" + sc.tm, "acc_em_f"})});
  scheds.push_back({"attack-com",
                    word({"auth_" + sc.tm, "commit0_" + sc.tc, "flipcmd_" + sc.tc,
                          "reveal_" + sc.tc, "open1_" + sc.tc,
                          "acc_em_f"})});
  const EmulationReport report = check_secure_emulation(
      sc.real_hat, sc.adv, sc.ideal_hat, sc.adv, {{"probe", sc.env}},
      scheds, same_scheduler(), AcceptInsight(act("acc_em_f")), 16);
  // The budget of Theorem 4.30: at most the sum of the pair advantages,
  // reached here at the max (sequential attacks do not stack).
  EXPECT_LE(report.max_eps,
            sc.mac.exact_advantage + sc.com.exact_advantage);
  EXPECT_EQ(report.max_eps, Rational(1, 4));  // the MAC attack dominates
  // The commitment attack contributes its own exact advantage.
  bool found = false;
  for (const auto& row : report.impl.rows) {
    if (row.sched == "attack-com") {
      EXPECT_EQ(row.eps, Rational(1, 8));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Theorem430, ConstructedSimulatorMatchesDirectOne) {
  CompositeScenario sc("em_g");
  // Sim = hide(DSim_mac || DSim_com || g(Adv), g(AAct)) with
  // DSim_i = Dummy(B_i, g_i) -- the proof's construction.
  const ActionBijection g =
      ActionBijection::with_suffix(sc.real_hat.aact_vocab(), "#r");
  std::vector<PsioaPtr> dsims{make_dummy_adversary(sc.mac.ideal, g),
                              make_dummy_adversary(sc.com.ideal, g)};
  const PsioaPtr sim = theorem_simulator(std::move(dsims), sc.adv, g);

  // The matching scheduler expands each adversary command a into the
  // two-step g(a), a (renamed emission by g(Adv), then the dummy's
  // forward) -- Forward^s specialized to word schedulers.
  auto expand = [&](std::initializer_list<std::string> actions) {
    std::vector<ActionId> w;
    for (const auto& s : actions) {
      const ActionId a = act(s);
      if (set::contains(sc.real_hat.adv_in_vocab(), a)) {
        w.push_back(g.apply(a));
      }
      w.push_back(a);
    }
    return std::make_shared<SequenceScheduler>(std::move(w), true);
  };
  const PsioaPtr lhs = hidden_adversary_composition(sc.real_hat, sc.adv);
  const PsioaPtr rhs = hidden_adversary_composition(sc.ideal_hat, sim);
  auto l = compose(sc.env, lhs);
  auto r = compose(sc.env, rhs);
  AcceptInsight f(act("acc_em_g"));

  const auto w_mac_l = word({"auth_" + sc.tm, "forge_" + sc.tm,
                             "forged_" + sc.tm, "acc_em_g"});
  const auto w_mac_r = expand({"auth_" + sc.tm, "forge_" + sc.tm,
                               "forged_" + sc.tm, "acc_em_g"});
  const Rational eps_mac =
      exact_balance_epsilon(*l, *w_mac_l, *r, *w_mac_r, f, 20);
  EXPECT_EQ(eps_mac, sc.mac.exact_advantage);

  const auto w_com_l = word({"auth_" + sc.tm, "commit0_" + sc.tc,
                             "flipcmd_" + sc.tc, "reveal_" + sc.tc,
                             "open1_" + sc.tc, "acc_em_g"});
  const auto w_com_r = expand({"auth_" + sc.tm, "commit0_" + sc.tc,
                               "flipcmd_" + sc.tc, "reveal_" + sc.tc,
                               "open1_" + sc.tc, "acc_em_g"});
  const Rational eps_com =
      exact_balance_epsilon(*l, *w_com_l, *r, *w_com_r, f, 20);
  EXPECT_EQ(eps_com, sc.com.exact_advantage);
}

TEST(Theorem430, SimulatorHidesRenamedVocabulary) {
  CompositeScenario sc("em_h");
  const ActionBijection g =
      ActionBijection::with_suffix(sc.real_hat.aact_vocab(), "#r");
  std::vector<PsioaPtr> dsims{make_dummy_adversary(sc.mac.ideal, g),
                              make_dummy_adversary(sc.com.ideal, g)};
  const PsioaPtr sim = theorem_simulator(std::move(dsims), sc.adv, g);
  const Signature sig = sim->signature(sim->start_state());
  // The renamed command channel is internalized; the raw commands the
  // ideal system consumes remain outputs.
  EXPECT_FALSE(sig.is_output(act("forge_em_hm#r")));
  EXPECT_TRUE(check_adversary_for(sc.ideal_hat, sim, 2).ok);
}

}  // namespace
}  // namespace cdse
