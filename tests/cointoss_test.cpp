// Blum coin toss over the commitment functionality
// (protocols/cointoss.hpp): a concrete composition case study.

#include "protocols/cointoss.hpp"

#include <gtest/gtest.h>

#include "impl/balance.hpp"
#include "protocols/environment.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

/// Deterministic driver: toss, adversary commits, protocol runs to the
/// result; the priority order lets the biaser interleave its flip.
SchedulerPtr driver(const std::string& tag, std::size_t bound = 12) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{
          act("toss_" + tag), act("commit0_" + tag), act("pickb_" + tag),
          act("announceB0_" + tag), act("announceB1_" + tag),
          act("flipcmd_" + tag), act("reveal_" + tag),
          act("open0_" + tag), act("open1_" + tag),
          act("result0_" + tag), act("result1_" + tag),
          act("acc_" + tag)},
      bound, /*local_only=*/true);
}

TEST(CoinToss, StructuredVocabulariesValidate) {
  const CoinTossPair ct = make_cointoss_pair(2, "ct_a");
  EXPECT_NO_THROW(ct.real.validate(12));
  EXPECT_NO_THROW(ct.ideal.validate(12));
  EXPECT_EQ(ct.exact_bias, Rational(1, 8));
}

TEST(CoinToss, HonestRunIsUniform) {
  // Without a flip request the toss is fair on both instances: the
  // committer's bit is XORed with a uniform honest bit.
  for (bool real : {true, false}) {
    const std::string tag = real ? "ct_b1" : "ct_b2";
    const CoinTossPair ct = make_cointoss_pair(3, tag);
    const StructuredPsioa& side = real ? ct.real : ct.ideal;
    // Honest committer: commits once, never equivocates. A one-shot
    // emitter drives the toss so the whole system is closed and only
    // locally controlled actions are scheduled (no ghost inputs).
    auto adv = make_honest_committer(tag);
    auto comp = compose(testing::make_emitter("tosser_" + tag,
                                              "toss_" + tag),
                        compose(side.ptr(), adv));
    PriorityScheduler sched(
        {act("toss_" + tag), act("commit0_" + tag), act("pickb_" + tag),
         act("announceB0_" + tag), act("announceB1_" + tag),
         act("reveal_" + tag), act("open0_" + tag), act("open1_" + tag),
         act("result0_" + tag), act("result1_" + tag)},
        12, /*local_only=*/true);
    EXPECT_EQ(exact_action_probability(*comp, sched,
                                       act("result1_" + tag), 16),
              Rational(1, 2));
  }
}

TEST(CoinToss, BiaserAchievesExactBias) {
  const std::string tag = "ct_c";
  const CoinTossPair ct = make_cointoss_pair(2, tag);
  const PsioaPtr biaser = make_biaser_adversary(tag);
  EXPECT_TRUE(check_adversary_for(ct.real, biaser, 10).ok);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("toss_" + tag)}, acts({"result0_" + tag}),
      act("result1_" + tag), act("acc_" + tag));
  auto real_sys = compose(env, compose(ct.real.ptr(), biaser));
  auto ideal_sys = compose(env, compose(ct.ideal.ptr(), biaser));
  const SchedulerPtr sched = driver(tag);
  // Real: P[result1] = 1/2 + p/2; ideal: exactly 1/2.
  AcceptInsight f(act("acc_" + tag));
  const auto real_dist = exact_fdist(*real_sys, *sched, f, 20);
  const auto ideal_dist = exact_fdist(*ideal_sys, *sched, f, 20);
  EXPECT_EQ(real_dist.mass("1"), Rational(1, 2) + Rational(1, 8));
  EXPECT_EQ(ideal_dist.mass("1"), Rational(1, 2));
  EXPECT_EQ(balance_distance(real_dist, ideal_dist), ct.exact_bias);
}

TEST(CoinToss, Lemma413BudgetHolds) {
  // The protocol's epsilon is at most the commitment's own advantage --
  // the composability bound, here with slack factor exactly 1/2.
  for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
    const std::string tag = "ct_d" + std::to_string(k);
    const CoinTossPair ct = make_cointoss_pair(k, tag);
    const PsioaPtr biaser = make_biaser_adversary(tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("toss_" + tag)}, acts({"result0_" + tag}),
        act("result1_" + tag), act("acc_" + tag));
    auto real_sys = compose(env, compose(ct.real.ptr(), biaser));
    auto ideal_sys = compose(env, compose(ct.ideal.ptr(), biaser));
    const SchedulerPtr sched = driver(tag);
    AcceptInsight f(act("acc_" + tag));
    const Rational eps = exact_balance_epsilon(*real_sys, *sched,
                                               *ideal_sys, *sched, f, 20);
    EXPECT_EQ(eps, ct.exact_bias) << "k=" << k;
    EXPECT_LE(eps, ct.commitment_advantage) << "k=" << k;
    EXPECT_EQ(eps, ct.commitment_advantage * Rational(1, 2));
  }
}

TEST(CoinToss, PartyLogicXorsCorrectly) {
  auto party = make_cointoss_party("ct_e");
  // Walk: toss, commit, pick (land on announcing1), announce, reveal,
  // open0 -> result must be 0 XOR 1 = 1.
  State q = party->start_state();
  q = party->transition(q, act("toss_ct_e")).support()[0];
  q = party->transition(q, act("commit1_ct_e")).support()[0];
  const StateDist pick = party->transition(q, act("pickb_ct_e"));
  State announcing1 = 0;
  bool found = false;
  for (State s : pick.support()) {
    if (party->state_label(s) == "announcing1") {
      announcing1 = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  q = party->transition(announcing1, act("announceB1_ct_e")).support()[0];
  q = party->transition(q, act("reveal_ct_e")).support()[0];
  q = party->transition(q, act("open0_ct_e")).support()[0];
  EXPECT_EQ(party->state_label(q), "resolving1");
}

}  // namespace
}  // namespace cdse
