// PSIOA core: ExplicitPsioa validation, executions and traces
// (psioa/psioa.hpp, psioa/execution.hpp; Defs 2.1, 2.2).

#include <gtest/gtest.h>

#include "protocols/coinflip.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

TEST(ExplicitPsioa, RejectsDuplicateLabels) {
  ExplicitPsioa a("dup");
  a.add_state("s");
  EXPECT_THROW(a.add_state("s"), std::logic_error);
}

TEST(ExplicitPsioa, RejectsInvalidSignature) {
  ExplicitPsioa a("badsig");
  const State s = a.add_state("s");
  Signature sig;
  sig.in = acts({"x1"});
  sig.out = acts({"x1"});
  EXPECT_THROW(a.set_signature(s, sig), std::logic_error);
}

TEST(ExplicitPsioa, RejectsTransitionOutsideSignature) {
  ExplicitPsioa a("notinsig");
  const State s = a.add_state("s");
  Signature sig;
  sig.in = acts({"x2"});
  a.set_signature(s, sig);
  EXPECT_THROW(a.add_step(s, act("x3"), s), std::logic_error);
}

TEST(ExplicitPsioa, RejectsDuplicateTransition) {
  ExplicitPsioa a("duptrans");
  const State s = a.add_state("s");
  Signature sig;
  sig.in = acts({"x4"});
  a.set_signature(s, sig);
  a.add_step(s, act("x4"), s);
  EXPECT_THROW(a.add_step(s, act("x4"), s), std::logic_error);
}

TEST(ExplicitPsioa, RejectsSubProbabilityTransition) {
  ExplicitPsioa a("subprob");
  const State s = a.add_state("s");
  Signature sig;
  sig.in = acts({"x5"});
  a.set_signature(s, sig);
  StateDist d;
  d.add(s, Rational(1, 2));
  EXPECT_THROW(a.add_transition(s, act("x5"), d), std::logic_error);
}

TEST(ExplicitPsioa, ValidateDetectsMissingTransition) {
  // Action enabling (E1): every signature action needs its transition.
  ExplicitPsioa a("missing");
  const State s = a.add_state("s");
  a.set_start(s);
  Signature sig;
  sig.in = acts({"x6"});
  a.set_signature(s, sig);
  EXPECT_THROW(a.validate(), std::logic_error);
}

TEST(ExplicitPsioa, ValidateDetectsMissingStart) {
  ExplicitPsioa a("nostart");
  const State s = a.add_state("s");
  Signature sig;
  a.set_signature(s, sig);
  EXPECT_THROW(a.validate(), std::logic_error);
}

TEST(ExplicitPsioa, IsStepQueriesSupport) {
  auto b = make_bernoulli("bern_isstep", "go_is", "yes_is", "no_is",
                          Rational(1, 2));
  const State q0 = b->start_state();
  const auto supp = b->transition(q0, act("go_is")).support();
  ASSERT_EQ(supp.size(), 2u);
  EXPECT_TRUE(b->is_step(q0, act("go_is"), supp[0]));
  EXPECT_FALSE(b->is_step(q0, act("yes_is"), supp[0]));
}

TEST(ExplicitPsioa, EncodeStateUsesLabel) {
  auto b = make_bernoulli("bern_enc", "go_enc", "yes_enc", "no_enc",
                          Rational(1, 2));
  EXPECT_EQ(b->encode_state(b->start_state()).length(), 8 * 4u);  // "idle"
  EXPECT_EQ(b->state_label(b->start_state()), "idle");
}

TEST(Coin, TransitionProbabilitiesAreExact) {
  auto coin = make_coin("psioa_t", Rational(1, 3));
  const State idle = coin->start_state();
  const StateDist after_flip = coin->transition(idle, act("flip_psioa_t"));
  ASSERT_EQ(after_flip.support_size(), 1u);
  const State tossing = after_flip.support()[0];
  const StateDist resolved = coin->transition(tossing, act("toss_psioa_t"));
  ASSERT_EQ(resolved.support_size(), 2u);
  EXPECT_EQ(resolved.total(), Rational(1));
}

// -- Execution fragments ----------------------------------------------------

ExecFragment flip_exec(Psioa& coin, const std::string& tag, bool head) {
  ExecFragment alpha(coin.start_state());
  const State tossing =
      coin.transition(coin.start_state(), act("flip_" + tag)).support()[0];
  alpha.append(act("flip_" + tag), tossing);
  for (State s : coin.transition(tossing, act("toss_" + tag)).support()) {
    if (coin.state_label(s) == (head ? "heads" : "tails")) {
      alpha.append(act("toss_" + tag), s);
      return alpha;
    }
  }
  ADD_FAILURE() << "outcome state not found";
  return alpha;
}

TEST(Execution, BasicAccessors) {
  auto coin = make_coin("exec_a", Rational(1, 2));
  const ExecFragment alpha = flip_exec(*coin, "exec_a", true);
  EXPECT_EQ(alpha.length(), 2u);
  EXPECT_EQ(alpha.fstate(), coin->start_state());
  EXPECT_EQ(coin->state_label(alpha.lstate()), "heads");
}

TEST(Execution, IsExecutionChecksStepsAndStart) {
  auto coin = make_coin("exec_b", Rational(1, 2));
  const ExecFragment alpha = flip_exec(*coin, "exec_b", false);
  EXPECT_TRUE(is_execution(*coin, alpha));
  ExecFragment bogus(alpha.lstate());
  bogus.append(act("flip_exec_b"), coin->start_state());
  EXPECT_FALSE(is_execution_fragment(*coin, bogus));
}

TEST(Execution, PrefixRelation) {
  auto coin = make_coin("exec_c", Rational(1, 2));
  const ExecFragment alpha = flip_exec(*coin, "exec_c", true);
  const ExecFragment p = alpha.prefix(1);
  EXPECT_TRUE(p.is_prefix_of(alpha));
  EXPECT_TRUE(p.is_proper_prefix_of(alpha));
  EXPECT_TRUE(alpha.is_prefix_of(alpha));
  EXPECT_FALSE(alpha.is_proper_prefix_of(alpha));
  EXPECT_FALSE(alpha.is_prefix_of(p));
  EXPECT_THROW(alpha.prefix(5), std::invalid_argument);
}

TEST(Execution, ConcatRequiresMatchingEndpoints) {
  auto coin = make_coin("exec_d", Rational(1, 2));
  const ExecFragment alpha = flip_exec(*coin, "exec_d", true);
  const ExecFragment head = alpha.prefix(1);
  // Build the tail starting at head.lstate().
  ExecFragment tail(head.lstate());
  tail.append(alpha.actions()[1], alpha.states()[2]);
  EXPECT_EQ(head.concat(tail), alpha);
  ExecFragment wrong(coin->start_state());
  wrong.append(alpha.actions()[0], alpha.states()[1]);
  EXPECT_THROW(alpha.concat(wrong), std::invalid_argument);
}

TEST(Execution, TraceRestrictsToExternalActions) {
  auto coin = make_coin("exec_e", Rational(1, 2));
  ExecFragment alpha = flip_exec(*coin, "exec_e", true);
  alpha.append(act("head_exec_e"), coin->start_state());
  const auto tr = trace_of(*coin, alpha);
  // toss_* is internal and must not appear.
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr[0], act("flip_exec_e"));
  EXPECT_EQ(tr[1], act("head_exec_e"));
  EXPECT_EQ(trace_string(tr), "flip_exec_e.head_exec_e");
}

TEST(Execution, ToStringRendersStatesAndActions) {
  auto coin = make_coin("exec_f", Rational(1, 2));
  const ExecFragment alpha = flip_exec(*coin, "exec_f", true);
  const std::string s = alpha.to_string(*coin);
  EXPECT_NE(s.find("idle"), std::string::npos);
  EXPECT_NE(s.find("flip_exec_f"), std::string::npos);
  EXPECT_NE(s.find("heads"), std::string::npos);
}

}  // namespace
}  // namespace cdse
