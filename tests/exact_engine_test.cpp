// Iterative / parallel / prefix-sharing exact cone-measure engine
// (sched/exact_engine.hpp): differential + unit + determinism suite.
//
// Layers:
//   order        -- the iterative pending-edge enumerator must replay the
//                   recursive reference visit-for-visit (same fragments,
//                   same probabilities, same pre-order), not just sum to
//                   the same measure.
//   differential -- exact f-dists from the iterative enumerator and from
//                   ParallelConeEngine at 1/2/4/8 workers must equal the
//                   recursive reference bit-for-bit across the same stack
//                   zoo the interning suite pins: random composed,
//                   hidden+renamed, structured MAC, PCA ledger, faulty
//                   channel, crashable, byzantine.
//   frontier     -- ConeFrontierCache: frontier(w).fdist equals a direct
//                   per-word enumeration under SequenceScheduler(w),
//                   max_reached matches the per-word evaluator, prefix
//                   hits fire, eviction works.
//   search       -- search_best_word (prefix-shared), the legacy
//                   recursive search, and search_best_word_parallel at
//                   1/2/4/8 workers return the identical word, epsilon,
//                   and words_evaluated.
//   frames       -- regression guard: the live pending-edge stack scales
//                   with depth x branching, not with cone size.
//   validation   -- Def 3.1 side-condition throws propagate through the
//                   new engines exactly as through the recursive one.
//   grid/sweep   -- check_implementation_parallel and the parallel
//                   family sweep are worker-count independent and match
//                   their serial counterparts row for row.
//
// Suite names all start with "ExactEngine" so scripts/check.sh --tsan
// can select the concurrency-bearing cases by regex.

#include "sched/exact_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/byzantine.hpp"
#include "fault/crash.hpp"
#include "fault/faulty.hpp"
#include "impl/family_sweep.hpp"
#include "impl/implementation.hpp"
#include "impl/optimal.hpp"
#include "protocols/channel.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 4;
const std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------- stack zoo
// Same shapes as the interning differential suite, under fresh "xe_"
// tags so the two suites' action vocabularies stay disjoint.

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

PsioaFactory crashable_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_crashable(make_channel(tag), 3); };
}

PsioaFactory byzantine_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    return std::make_shared<ByzantinePsioa>(
        make_channel(tag),
        make_flip_involution({{act("recv0_" + tag), act("recv1_" + tag)}}),
        Rational(1, 3));
  };
}

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
}

ExactDisc<Perception> reference_fdist(const PsioaFactory& fa) {
  PsioaPtr sys = fa();
  UniformScheduler sched(kDepth);
  TraceInsight f;
  return exact_fdist_recursive(*sys, sched, f, kDepth + 1);
}

/// Iterative engine (fresh instance) and ParallelConeEngine at every
/// worker count must reproduce the recursive reference bit-for-bit.
void expect_engines_agree(const PsioaFactory& fa) {
  const ExactDisc<Perception> want = reference_fdist(fa);
  TraceInsight f;

  {
    PsioaPtr sys = fa();
    UniformScheduler sched(kDepth);
    ConeStats stats;
    EXPECT_EQ(exact_fdist(*sys, sched, f, kDepth + 1, &stats), want);
    EXPECT_GT(stats.leaves + stats.halts, 0u);
  }

  ParallelConeEngine engine(fa, uniform_factory(kDepth));
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = kDepth + 1;
  engine.prepare(plan, kDepth + 1);
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    EXPECT_EQ(engine.exact_fdist(f, kDepth + 1, pool), want)
        << "workers=" << workers;
    EXPECT_GT(engine.last_stats().leaves + engine.last_stats().halts, 0u);
  }
}

// ------------------------------------------------------------ visit order

using VisitLog = std::vector<std::pair<ExecFragment, Rational>>;

TEST(ExactEngineOrder, IterativeReplaysRecursivePreOrderExactly) {
  for (int seed = 0; seed < 3; ++seed) {
    const PsioaFactory fa =
        composed_factory(seed, "xe_ord" + std::to_string(seed));
    VisitLog recursive;
    {
      PsioaPtr sys = fa();
      UniformScheduler sched(kDepth);
      for_each_halted_execution_recursive(
          *sys, sched, kDepth + 1,
          [&](const ExecFragment& alpha, const Rational& p) {
            recursive.emplace_back(alpha, p);
          });
    }
    VisitLog iterative;
    {
      PsioaPtr sys = fa();
      UniformScheduler sched(kDepth);
      for_each_halted_execution(
          *sys, sched, kDepth + 1,
          [&](const ExecFragment& alpha, const Rational& p) {
            iterative.emplace_back(alpha, p);
          });
    }
    ASSERT_EQ(recursive.size(), iterative.size()) << "seed " << seed;
    for (std::size_t i = 0; i < recursive.size(); ++i) {
      EXPECT_EQ(recursive[i].first, iterative[i].first)
          << "seed " << seed << " event " << i;
      EXPECT_EQ(recursive[i].second, iterative[i].second)
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(ExactEngineOrder, EnumerateConeRestoresThePathOnExit) {
  const PsioaFactory fa = composed_factory(5, "xe_rest");
  PsioaPtr sys = fa();
  UniformScheduler sched(kDepth);
  TraceInsight f;
  ExecFragment path = ExecFragment::starting_at(sys->start_state());
  const ExecFragment before = path;
  std::size_t events = 0;
  enumerate_cone(*sys, sched, kDepth + 1, path, Rational(1),
                 [&](const ExecFragment&, const Rational&) { ++events; });
  EXPECT_GT(events, 0u);
  EXPECT_EQ(path, before);
}

// ------------------------------------------------------------ differential

class ExactEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ExactEngineDifferential, ComposedStack) {
  const int n = GetParam();
  expect_engines_agree(composed_factory(n, "xe_a" + std::to_string(n)));
}

TEST_P(ExactEngineDifferential, HiddenRenamedStack) {
  const int n = GetParam();
  expect_engines_agree(hidden_renamed_factory(n, "xe_b" + std::to_string(n)));
}

INSTANTIATE_TEST_SUITE_P(Random, ExactEngineDifferential,
                         ::testing::Range(0, 4));

TEST(ExactEngineStacks, StructuredSecureStack) {
  expect_engines_agree(mac_factory("xe_mac"));
}

TEST(ExactEngineStacks, PcaLedgerStack) {
  expect_engines_agree(ledger_factory("xe_led"));
}

TEST(ExactEngineStacks, FaultyChannelStack) {
  expect_engines_agree(faulty_channel_factory("xe_fl"));
}

TEST(ExactEngineStacks, CrashableStack) {
  expect_engines_agree(crashable_factory("xe_cr"));
}

TEST(ExactEngineStacks, ByzantineStack) {
  expect_engines_agree(byzantine_factory("xe_bz"));
}

TEST(ExactEngineParallel, SmallFrontierTargetStillExact) {
  // Force the breadth-first expansion to hand out single-node subtrees
  // (frontier_target = 1 stops expanding immediately) and a huge target
  // (everything enumerated in phase 1, nothing fanned out): both
  // degenerate shapes must still match the reference.
  const PsioaFactory fa = faulty_channel_factory("xe_ft");
  const ExactDisc<Perception> want = reference_fdist(fa);
  TraceInsight f;
  ParallelConeEngine engine(fa, uniform_factory(kDepth));
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = kDepth + 1;
  engine.prepare(plan, kDepth + 1);
  ThreadPool pool(4);
  EXPECT_EQ(engine.exact_fdist(f, kDepth + 1, pool, 1), want);
  EXPECT_EQ(engine.exact_fdist(f, kDepth + 1, pool, 100000), want);
  EXPECT_EQ(engine.last_stats().splits, 0u);
}

// --------------------------------------------------------------- frontier

TEST(ExactEngineFrontier, FdistMatchesDirectPerWordEnumeration) {
  const std::string tag = "xe_fw";
  const PsioaFactory fa = mac_factory(tag);
  const std::size_t depth = 8;
  PsioaPtr cached_sys = fa();
  TraceInsight f;
  ConeFrontierCache cache(*cached_sys, f, depth);

  const std::vector<std::vector<ActionId>> words = {
      {},
      {act("auth_" + tag)},
      {act("auth_" + tag), act("forge_" + tag)},
      {act("auth_" + tag), act("forge_" + tag), act("forged_" + tag)},
      {act("forged_" + tag)},  // stalls: not schedulable at the start
      {act("auth_" + tag), act("auth_" + tag), act("auth_" + tag),
       act("auth_" + tag)},
  };
  for (const auto& word : words) {
    const ConeFrontier& fr = cache.frontier(word);
    PsioaPtr sys = fa();
    SequenceScheduler seq(word, /*local_only=*/false);
    std::size_t max_reached = 0;
    ExactDisc<Perception> want;
    for_each_halted_execution_recursive(
        *sys, seq, depth,
        [&](const ExecFragment& alpha, const Rational& p) {
          want.add(f.apply(*sys, alpha), p);
          max_reached = std::max(max_reached, alpha.length());
        });
    EXPECT_EQ(fr.fdist, want) << "word size " << word.size();
    EXPECT_EQ(fr.max_reached, max_reached) << "word size " << word.size();
    EXPECT_EQ(fr.fdist.total(), Rational(1)) << "word size " << word.size();
  }
}

TEST(ExactEngineFrontier, PrefixLevelsAreSharedNotReenumerated) {
  const std::string tag = "xe_fp";
  PsioaPtr sys = mac_factory(tag)();
  TraceInsight f;
  ConeFrontierCache cache(*sys, f, 8);
  const ActionId auth = act("auth_" + tag);
  const ActionId forge = act("forge_" + tag);

  (void)cache.frontier({auth, forge});
  const ConeStats after_first = cache.stats();
  // Root plus two extension levels, all built fresh (the root is not an
  // extension, so it counts neither as hit nor miss).
  EXPECT_EQ(after_first.prefix_hits, 0u);
  EXPECT_EQ(after_first.prefix_misses, 2u);
  EXPECT_EQ(cache.size(), 3u);

  // Re-asking for the word and asking for a sibling extension both answer
  // the shared prefix from the cache.
  (void)cache.frontier({auth, forge});
  (void)cache.frontier({auth, auth});
  const ConeStats after = cache.stats();
  EXPECT_EQ(after.prefix_hits, 2u);
  EXPECT_EQ(after.prefix_misses, 3u);
  EXPECT_EQ(cache.size(), 4u);

  cache.evict({auth, auth});
  EXPECT_EQ(cache.size(), 3u);
  cache.evict({auth, auth});  // absent: no-op
  EXPECT_EQ(cache.size(), 3u);
}

// ----------------------------------------------------------------- search

TEST(ExactEngineSearch, LegacyPrefixSharedAndParallelAgree) {
  // Factories build everything fresh per call: pool workers each get
  // their own instances, never sharing a memo table.
  const PsioaFactory make_lhs = []() -> PsioaPtr {
    const RealIdealPair pair = make_otmac_pair(2, "xe_s");
    auto adv = make_sink_adversary("xe_s_adv", {}, acts({"forge_xe_s"}));
    return hidden_adversary_composition(pair.real, adv);
  };
  const PsioaFactory make_rhs = []() -> PsioaPtr {
    const RealIdealPair pair = make_otmac_pair(2, "xe_s");
    auto adv = make_sink_adversary("xe_s_adv", {}, acts({"forge_xe_s"}));
    return hidden_adversary_composition(pair.ideal, adv);
  };
  const std::vector<ActionId> alphabet{
      act("auth_xe_s"), act("forge_xe_s"), act("forged_xe_s"),
      act("rejected_xe_s")};
  TraceInsight f;

  PsioaPtr l1 = make_lhs();
  PsioaPtr r1 = make_rhs();
  const BestDistinguisher legacy =
      search_best_word_legacy(*l1, *r1, alphabet, 4, f, 10);
  EXPECT_EQ(legacy.eps, Rational(1, 4));

  PsioaPtr l2 = make_lhs();
  PsioaPtr r2 = make_rhs();
  const BestDistinguisher shared =
      search_best_word(*l2, *r2, alphabet, 4, f, 10);
  EXPECT_EQ(shared.word, legacy.word);
  EXPECT_EQ(shared.eps, legacy.eps);
  EXPECT_EQ(shared.words_evaluated, legacy.words_evaluated);
  // The whole point of the frontier cache: deeper words reuse ancestors.
  EXPECT_GT(shared.stats.prefix_hits, 0u);
  EXPECT_GT(shared.stats.prefix_misses, 0u);

  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    const BestDistinguisher par = search_best_word_parallel(
        make_lhs, make_rhs, alphabet, 4, f, 10, pool);
    EXPECT_EQ(par.word, legacy.word) << "workers=" << workers;
    EXPECT_EQ(par.eps, legacy.eps) << "workers=" << workers;
    EXPECT_EQ(par.words_evaluated, legacy.words_evaluated)
        << "workers=" << workers;
  }
}

TEST(ExactEngineSearch, IdenticalSystemsStayZeroThroughAllEngines) {
  const PsioaFactory make_sys = []() -> PsioaPtr {
    const RealIdealPair pair = make_otmac_pair(2, "xe_z");
    auto adv = make_sink_adversary("xe_z_adv", {}, acts({"forge_xe_z"}));
    return hidden_adversary_composition(pair.real, adv);
  };
  const std::vector<ActionId> alphabet{act("auth_xe_z"), act("forge_xe_z"),
                                       act("forged_xe_z")};
  TraceInsight f;
  PsioaPtr a = make_sys();
  PsioaPtr b = make_sys();
  const BestDistinguisher shared = search_best_word(*a, *b, alphabet, 3, f, 8);
  EXPECT_EQ(shared.eps, Rational(0));
  ThreadPool pool(4);
  const BestDistinguisher par =
      search_best_word_parallel(make_sys, make_sys, alphabet, 3, f, 8, pool);
  EXPECT_EQ(par.eps, Rational(0));
  EXPECT_EQ(par.word, shared.word);
  EXPECT_EQ(par.words_evaluated, shared.words_evaluated);
}

// ----------------------------------------------------------------- frames

TEST(ExactEngineFrames, LiveStackScalesWithDepthNotConeSize) {
  const PsioaFactory fa = composed_factory(1, "xe_frm");
  TraceInsight f;
  auto stats_at = [&](std::size_t depth) {
    PsioaPtr sys = fa();
    UniformScheduler sched(depth);
    ConeStats s;
    (void)exact_fdist(*sys, sched, f, depth, &s);
    return s;
  };
  const ConeStats shallow = stats_at(3);
  const ConeStats deep = stats_at(7);
  // The cone itself blows up with depth...
  EXPECT_GT(deep.frames_pushed, 4 * shallow.frames_pushed);
  // ...while the live pending-edge stack only grows ~linearly (depth x
  // per-level branching), far below the number of edges traversed.
  EXPECT_LE(deep.frames_peak, 4 * shallow.frames_peak);
  EXPECT_LT(8 * deep.frames_peak, deep.frames_pushed);
}

// ------------------------------------------------------------- validation

class RogueScheduler : public Scheduler {
 public:
  enum class Mode { kOverweight, kDisabledAction };
  explicit RogueScheduler(Mode mode) : mode_(mode) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override {
    ActionChoice c;
    if (mode_ == Mode::kOverweight) {
      const ActionSet en = automaton.enabled(alpha.lstate());
      if (!en.empty()) c.add(en.front(), Rational(3, 2));
    } else {
      c.add(act("xe_never_enabled"), Rational(1));
    }
    return c;
  }
  std::string name() const override { return "xe_rogue"; }

 private:
  Mode mode_;
};

TEST(ExactEngineValidation, IterativeRejectsRogueSchedulers) {
  TraceInsight f;
  for (const auto mode : {RogueScheduler::Mode::kOverweight,
                          RogueScheduler::Mode::kDisabledAction}) {
    PsioaPtr sys = faulty_channel_factory("xe_v1")();
    RogueScheduler rogue(mode);
    EXPECT_THROW(exact_fdist(*sys, rogue, f, 4), std::logic_error);
  }
}

TEST(ExactEngineValidation, ParallelEngineRejectsRogueSchedulers) {
  TraceInsight f;
  for (const auto mode : {RogueScheduler::Mode::kOverweight,
                          RogueScheduler::Mode::kDisabledAction}) {
    ParallelConeEngine engine(
        faulty_channel_factory("xe_v2"),
        [mode]() -> SchedulerPtr {
          return std::make_shared<RogueScheduler>(mode);
        });
    WarmupPlan plan;
    plan.episodes = 0;
    plan.horizon = 4;
    engine.prepare(plan, 4);
    ThreadPool pool(2);
    EXPECT_THROW(engine.exact_fdist(f, 4, pool), std::logic_error);
  }
}

// ------------------------------------------------------------- grid/sweep

TEST(ExactEngineGrid, ParallelImplementationCheckMatchesSerial) {
  const std::string tag = "xe_g";
  const PsioaFactory make_a = [tag]() -> PsioaPtr {
    return make_otmac_pair(2, tag).real.ptr();
  };
  const PsioaFactory make_b = [tag]() -> PsioaPtr {
    return make_otmac_pair(2, tag).ideal.ptr();
  };
  auto make_env = [tag]() -> PsioaPtr {
    return make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
  };
  auto make_word = [tag]() -> SchedulerPtr {
    return std::make_shared<SequenceScheduler>(
        std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                              act("forged_" + tag), act("acc_" + tag)},
        /*local_only=*/true);
  };
  auto make_uniform = []() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;

  const std::vector<LabeledPsioa> envs{{"probe", make_env()}};
  const std::vector<LabeledScheduler> scheds{{"word", make_word()},
                                             {"uniform", make_uniform()}};
  const ImplementationReport serial = check_implementation(
      make_a(), make_b(), envs, scheds, same_scheduler(), f, 8);

  const std::vector<LabeledPsioaFactory> fenvs{{"probe", make_env}};
  const std::vector<LabeledSchedulerFactory> fscheds{{"word", make_word},
                                                     {"uniform", make_uniform}};
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    const ImplementationReport par = check_implementation_parallel(
        make_a, make_b, fenvs, fscheds, same_scheduler(), f, 8, pool);
    ASSERT_EQ(par.rows.size(), serial.rows.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
      EXPECT_EQ(par.rows[i].env, serial.rows[i].env);
      EXPECT_EQ(par.rows[i].sched, serial.rows[i].sched);
      EXPECT_EQ(par.rows[i].eps, serial.rows[i].eps)
          << "workers=" << workers << " row " << i;
    }
    EXPECT_EQ(par.max_eps, serial.max_eps) << "workers=" << workers;
  }
}

TEST(ExactEngineGrid, FamilySweepIsWorkerCountIndependent) {
  const std::string base = "xe_fs";
  PsioaFamily real{
      "real", [base](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(k, tag);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv =
            make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
        return compose(env, compose(pair.real.ptr(), adv));
      }};
  PsioaFamily ideal = real;
  ideal.name = "ideal";
  ideal.make = [base](std::uint32_t k) -> PsioaPtr {
    const std::string tag = base + std::to_string(k);
    const RealIdealPair pair = make_otmac_pair(k, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
    return compose(env, compose(pair.ideal.ptr(), adv));
  };
  SchedulerFamily word{
      "word", [base](std::uint32_t k) -> SchedulerPtr {
        const std::string tag = base + std::to_string(k);
        return std::make_shared<SequenceScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                  act("forged_" + tag), act("acc_" + tag)},
            /*local_only=*/true);
      }};
  const std::vector<std::uint32_t> ks{1, 2, 3, 4};

  auto sweep = [&](std::size_t workers) {
    ThreadPool pool(workers);
    return family_epsilon_sweep(real, ideal, word, TraceInsight(), ks, 12,
                                /*exact_upto=*/4, /*trials=*/0, /*seed=*/1,
                                pool);
  };
  const FamilySweepReport one = sweep(1);
  for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const FamilySweepReport many = sweep(workers);
    ASSERT_EQ(many.rows.size(), one.rows.size());
    for (std::size_t i = 0; i < one.rows.size(); ++i) {
      EXPECT_EQ(many.rows[i].k, one.rows[i].k);
      ASSERT_TRUE(many.rows[i].exact.has_value());
      ASSERT_TRUE(one.rows[i].exact.has_value());
      EXPECT_EQ(*many.rows[i].exact, *one.rows[i].exact)
          << "workers=" << workers << " k=" << one.rows[i].k;
      EXPECT_EQ(many.rows[i].sampled, one.rows[i].sampled);
    }
    EXPECT_EQ(many.negligible_looking, one.negligible_looking);
  }
  // The sweep's exact cells carry the closed-form MAC advantage.
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(*one.rows[i].exact,
              Rational(1, static_cast<std::int64_t>(1) << ks[i]));
  }
}

}  // namespace
}  // namespace cdse
