// The bounded machine model (bounded/cost.hpp, bounded/family.hpp;
// Defs 4.1-4.8 and Lemmas 4.3/4.5).

#include <gtest/gtest.h>

#include "bounded/cost.hpp"
#include "bounded/family.hpp"
#include "pca/dynamic_pca.hpp"
#include "pca/pca_compose.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_emitter;
using testing::make_listener;

TEST(Machines, StartDecision) {
  auto coin = make_coin("bnd_a", Rational(1, 2));
  CostMeter m;
  EXPECT_TRUE(machine_is_start(*coin, coin->start_state(), m));
  EXPECT_GT(m.steps(), 0u);
  const State tossing =
      coin->transition(coin->start_state(), act("flip_bnd_a")).support()[0];
  EXPECT_FALSE(machine_is_start(*coin, tossing, m));
}

TEST(Machines, SigClassDecision) {
  auto coin = make_coin("bnd_b", Rational(1, 2));
  const State q0 = coin->start_state();
  CostMeter m;
  EXPECT_TRUE(machine_in_sig_class(*coin, q0, act("flip_bnd_b"),
                                   SigClass::kInput, m));
  EXPECT_FALSE(machine_in_sig_class(*coin, q0, act("flip_bnd_b"),
                                    SigClass::kOutput, m));
  EXPECT_FALSE(machine_in_sig_class(*coin, q0, act("toss_bnd_b"),
                                    SigClass::kInput, m));
}

TEST(Machines, StepDecision) {
  auto b = make_bernoulli("bnd_c", "bnd_go_c", "bnd_y_c", "bnd_n_c",
                          Rational(1, 2));
  const State q0 = b->start_state();
  const auto supp = b->transition(q0, act("bnd_go_c")).support();
  CostMeter m;
  EXPECT_TRUE(machine_is_step(*b, q0, act("bnd_go_c"), supp[0], m));
  EXPECT_FALSE(machine_is_step(*b, q0, act("bnd_go_c"), q0, m));
  EXPECT_FALSE(machine_is_step(*b, q0, act("bnd_y_c"), supp[0], m));
}

TEST(Machines, NextStateSamplesSupport) {
  auto b = make_bernoulli("bnd_d", "bnd_go_d", "bnd_y_d", "bnd_n_d",
                          Rational(1, 2));
  const State q0 = b->start_state();
  CostMeter m;
  const State low = machine_next_state(*b, q0, act("bnd_go_d"), 0.1, m);
  const State high = machine_next_state(*b, q0, act("bnd_go_d"), 0.9, m);
  EXPECT_NE(low, high);
  EXPECT_GT(m.steps(), 0u);
}

TEST(Machines, PcaMachinesProduceEncodings) {
  const LedgerSystem sys = make_ledger_system(1, "bnd_e");
  DynamicPca& x = *sys.dynamic;
  const State q0 = x.start_state();
  CostMeter m;
  const BitString conf = machine_config(x, q0, m);
  EXPECT_GT(conf.length(), 0u);
  const BitString created = machine_created(x, q0, act("open1_bnd_e"), m);
  EXPECT_GT(created.length(), 0u);
  const BitString hidden = machine_hidden(x, q0, m);
  EXPECT_GT(hidden.length(), 0u);
  EXPECT_GT(m.steps(), 0u);
}

TEST(Profile, ExploresAndBoundsCoin) {
  auto coin = make_coin("bnd_f", Rational(1, 2));
  const BoundedProfile p = profile_psioa(*coin, 6);
  EXPECT_EQ(p.states_explored, 4u);
  EXPECT_GT(p.transitions_explored, 0u);
  EXPECT_GT(p.b(), 0u);
  EXPECT_GE(p.b(), p.max_state_repr);
  EXPECT_GE(p.b(), p.max_machine_cost);
}

TEST(Profile, Lemma43CompositionBoundHolds) {
  // b(A1||A2) <= c_comp * (b(A1) + b(A2)) for a generous constant; the
  // bench fits the tight constant, the test asserts the lemma's form.
  auto a1 = make_coin("bnd_g1", Rational(1, 2));
  auto a2 = make_bernoulli("bnd_g2", "bnd_go_g", "bnd_y_g", "bnd_n_g",
                           Rational(1, 3));
  const auto b1 = profile_psioa(*a1, 6).b();
  const auto b2 = profile_psioa(*a2, 6).b();
  auto comp = compose(a1, a2);
  const auto bc = profile_psioa(*comp, 6).b();
  EXPECT_LE(bc, 6 * (b1 + b2));
  EXPECT_GE(bc, std::max(b1, b2));  // composition cannot shrink below parts
}

TEST(Profile, LemmaB2PcaCompositionBoundHolds) {
  auto reg = std::make_shared<AutomatonRegistry>();
  const Aid e1 = reg->add(make_emitter("bnd_h1", "bnd_m1"));
  const Aid e2 = reg->add(make_emitter("bnd_h2", "bnd_m2"));
  auto x1 = std::make_shared<DynamicPca>("bnd_x1", reg,
                                         std::vector<Aid>{e1});
  auto x2 = std::make_shared<DynamicPca>("bnd_x2", reg,
                                         std::vector<Aid>{e2});
  const auto b1 = profile_pca(*x1, 4).b();
  const auto b2 = profile_pca(*x2, 4).b();
  auto comp = compose_pca(x1, x2);
  const auto bc = profile_pca(*comp, 4).b();
  EXPECT_LE(bc, 8 * (b1 + b2));
}

TEST(Profile, Lemma45HidingBoundHolds) {
  auto b = make_bernoulli("bnd_i", "bnd_go_i", "bnd_y_i", "bnd_n_i",
                          Rational(1, 2));
  const auto base = profile_psioa(*b, 6).b();
  auto h = hide_actions(b, acts({"bnd_y_i"}));
  const auto hidden = profile_psioa(*h, 6).b();
  // The hidden set here is recognizable in time ~ its encoding length.
  const auto recognizer_cost = encode_action(act("bnd_y_i")).length();
  EXPECT_LE(hidden, 4 * (base + recognizer_cost));
}

TEST(Profile, MaxStatesCapRespected) {
  const LedgerSystem sys = make_ledger_system(3, "bnd_j");
  const BoundedProfile p = profile_psioa(*sys.dynamic, 50, 5);
  EXPECT_LE(p.states_explored, 5u);
}

TEST(Family, ComposeFamiliesIsIndexWise) {
  PsioaFamily f1{"coins", [](std::uint32_t k) {
                   return make_coin("bnd_k1_" + std::to_string(k),
                                    Rational(1, 2));
                 }};
  PsioaFamily f2{"berns", [](std::uint32_t k) {
                   const std::string t = "bnd_k2_" + std::to_string(k);
                   return make_bernoulli(t, "go_" + t, "y_" + t, "n_" + t,
                                         Rational(1, 2));
                 }};
  const PsioaFamily c = compose_families(f1, f2);
  EXPECT_EQ(c.name, "coins||berns");
  auto a3 = c.make(3);
  EXPECT_NE(a3, nullptr);
  EXPECT_NE(a3->name().find("bnd_k1_3"), std::string::npos);
}

TEST(Family, BoundCheckAcceptsGenerousPolynomial) {
  PsioaFamily fam{"coins2", [](std::uint32_t k) {
                    return make_coin("bnd_l_" + std::to_string(k),
                                     Rational(1, 2));
                  }};
  const auto report = check_family_bounded(
      fam, Polynomial::monomial(1000.0, 1) + Polynomial::constant(1000.0),
      {1, 2, 3}, 6);
  EXPECT_TRUE(report.all_ok);
  ASSERT_EQ(report.rows.size(), 3u);
  for (const auto& row : report.rows) EXPECT_TRUE(row.ok);
}

TEST(Family, BoundCheckRejectsTooTightBound) {
  PsioaFamily fam{"coins3", [](std::uint32_t k) {
                    return make_coin("bnd_m_" + std::to_string(k),
                                     Rational(1, 2));
                  }};
  const auto report =
      check_family_bounded(fam, Polynomial::constant(1.0), {1, 2}, 6);
  EXPECT_FALSE(report.all_ok);
}

}  // namespace
}  // namespace cdse
