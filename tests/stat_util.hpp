#pragma once
// Chi-square helpers for the statistical differential tests: sampled
// f-dist vs exact f-dist (goodness of fit) and sampled vs sampled (two
// samples of the same unknown distribution, e.g. serial vs batched
// engines at independent seeds).
//
// Ad-hoc sampled comparisons (EXPECT_LT(balance_distance(...), 0.02))
// conflate two error sources: Monte-Carlo noise and genuine engine bugs.
// A chi-square test separates them: the statistic's null distribution is
// known, so the rejection threshold is a *p-value* with a quantified
// false-positive budget instead of a hand-tuned distance.
//
// False-positive budget: every assertion built on these helpers rejects
// at alpha = 1e-6 by default. The suite currently runs on the order of
// 10^2 such assertions, so the expected number of spurious failures per
// full run is ~1e-4 -- one flake per ~10,000 CI runs. All draws are
// seeded, so a given build either passes always or fails always; the
// budget covers seed churn, not per-run noise.
//
// Numerical recipe: the p-value is the regularized upper incomplete
// gamma Q(k/2, x/2), computed by the classic series (x < a+1) /
// continued-fraction (x >= a+1) split; low-expectation cells are pooled
// (Cochran's rule: expected >= 5) so the chi-square approximation holds.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "measure/disc.hpp"
#include "sched/insight.hpp"
#include "util/rational.hpp"

namespace cdse::testing {

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0. Series/continued-fraction split per Numerical
/// Recipes; relative error ~1e-10, far below any alpha in use.
inline double regularized_gamma_q(double a, double x) {
  if (x <= 0.0) return 1.0;
  const double lg = std::lgamma(a);
  if (x < a + 1.0) {
    // P(a, x) by series: P = x^a e^-x / Gamma(a) * sum x^n / (a)_{n+1}.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - lg);
    return 1.0 - p;
  }
  // Q(a, x) by Lentz's continued fraction.
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int n = 1; n < 500; ++n) {
    const double an = -static_cast<double>(n) * (static_cast<double>(n) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - lg);
}

/// Upper-tail p-value of chi-square statistic `stat` at `dof` degrees of
/// freedom: P[X >= stat] = Q(dof/2, stat/2).
inline double chi_square_pvalue(double stat, double dof) {
  if (dof <= 0.0) return 1.0;
  return regularized_gamma_q(dof / 2.0, stat / 2.0);
}

/// Outcome of one chi-square computation, carried into the assertion
/// message so a failure is diagnosable from the log alone.
struct ChiSquareResult {
  double stat = 0.0;
  double dof = 0.0;
  double pvalue = 1.0;
  std::size_t cells = 0;         ///< cells entering the statistic
  std::size_t pooled_cells = 0;  ///< low-expectation cells merged away
  double impossible_mass = 0.0;  ///< observed mass outside the support
};

/// Goodness of fit: observed per-category counts against exact category
/// probabilities. `observed` pairs each category's probability under the
/// null with its observed count; categories sampled outside the exact
/// support are accumulated by the caller into `impossible` (they refute
/// the null outright -- p-value 0 -- since the exact side gives them
/// probability zero).
inline ChiSquareResult chi_square_gof_counts(
    const std::vector<std::pair<double, double>>& prob_and_count,
    double trials, double impossible) {
  ChiSquareResult r;
  r.impossible_mass = impossible;
  if (impossible > 0.0) {
    r.pvalue = 0.0;
    r.stat = std::numeric_limits<double>::infinity();
    return r;
  }
  // Cochran pooling: cells expecting < 5 merge into one remainder cell
  // so the asymptotic chi-square null holds.
  constexpr double kMinExpected = 5.0;
  double stat = 0.0;
  double pooled_exp = 0.0;
  double pooled_obs = 0.0;
  std::size_t cells = 0;
  for (const auto& [p, count] : prob_and_count) {
    const double expected = p * trials;
    if (expected < kMinExpected) {
      pooled_exp += expected;
      pooled_obs += count;
      ++r.pooled_cells;
      continue;
    }
    const double d = count - expected;
    stat += d * d / expected;
    ++cells;
  }
  if (pooled_exp > 0.0) {
    const double d = pooled_obs - pooled_exp;
    stat += d * d / pooled_exp;
    ++cells;
  }
  r.stat = stat;
  r.cells = cells;
  r.dof = cells > 1 ? static_cast<double>(cells - 1) : 0.0;
  r.pvalue = chi_square_pvalue(r.stat, r.dof);
  return r;
}

/// Two-sample chi-square over per-category counts c1 (n1 total draws)
/// and c2 (n2 total draws): tests whether both samples come from one
/// (unknown) distribution. Statistic per Numerical Recipes:
///   sum_i (sqrt(n2/n1) c1_i - sqrt(n1/n2) c2_i)^2 / (c1_i + c2_i).
inline ChiSquareResult chi_square_two_sample_counts(
    const std::vector<std::pair<double, double>>& counts, double n1,
    double n2) {
  ChiSquareResult r;
  const double k1 = std::sqrt(n2 / n1);
  const double k2 = std::sqrt(n1 / n2);
  // Pool sparse categories (combined count < 10) so each cell's normal
  // approximation holds.
  constexpr double kMinCombined = 10.0;
  double stat = 0.0;
  double pool1 = 0.0;
  double pool2 = 0.0;
  std::size_t cells = 0;
  for (const auto& [c1, c2] : counts) {
    if (c1 + c2 <= 0.0) continue;
    if (c1 + c2 < kMinCombined) {
      pool1 += c1;
      pool2 += c2;
      ++r.pooled_cells;
      continue;
    }
    const double d = k1 * c1 - k2 * c2;
    stat += d * d / (c1 + c2);
    ++cells;
  }
  if (pool1 + pool2 > 0.0) {
    const double d = k1 * pool1 - k2 * pool2;
    stat += d * d / (pool1 + pool2);
    ++cells;
  }
  r.stat = stat;
  r.cells = cells;
  r.dof = cells > 1 ? static_cast<double>(cells - 1) : 0.0;
  r.pvalue = chi_square_pvalue(r.stat, r.dof);
  return r;
}

/// The per-assertion rejection level the suite budgets for (see the
/// header comment).
inline constexpr double kStatAlpha = 1e-6;

/// Asserts a sampled (normalized) f-dist is consistent with the exact
/// f-dist it estimates, at `trials` draws. GOF chi-square at `alpha`.
inline ::testing::AssertionResult fdist_matches_exact(
    const ExactDisc<Perception>& exact, const Disc<Perception, double>& sampled,
    std::size_t trials, double alpha = kStatAlpha) {
  const double n = static_cast<double>(trials);
  std::vector<std::pair<double, double>> cells;
  cells.reserve(exact.entries().size());
  double impossible = 0.0;
  // Union walk: both discs are sorted association vectors.
  std::size_t j = 0;
  const auto& se = sampled.entries();
  for (const auto& [perc, p] : exact.entries()) {
    double count = 0.0;
    while (j < se.size() && se[j].first < perc) {
      impossible += se[j].second * n;  // sampled outside the exact support
      ++j;
    }
    if (j < se.size() && se[j].first == perc) {
      count = se[j].second * n;
      ++j;
    }
    cells.emplace_back(p.to_double(), count);
  }
  for (; j < se.size(); ++j) impossible += se[j].second * n;
  const ChiSquareResult r = chi_square_gof_counts(cells, n, impossible);
  if (r.pvalue >= alpha) return ::testing::AssertionSuccess();
  std::ostringstream msg;
  msg << "chi-square GOF rejects at alpha=" << alpha << ": stat=" << r.stat
      << " dof=" << r.dof << " p=" << r.pvalue << " cells=" << r.cells
      << " pooled=" << r.pooled_cells;
  if (r.impossible_mass > 0.0) {
    msg << " impossible_count=" << r.impossible_mass
        << " (sampled perceptions the exact f-dist gives probability 0)";
  }
  return ::testing::AssertionFailure() << msg.str();
}

/// Asserts two sampled (normalized) f-dists estimate the same underlying
/// distribution -- the differential check between the serial and batched
/// engines. Two-sample chi-square at `alpha`.
inline ::testing::AssertionResult fdists_match(
    const Disc<Perception, double>& a, std::size_t trials_a,
    const Disc<Perception, double>& b, std::size_t trials_b,
    double alpha = kStatAlpha) {
  const double n1 = static_cast<double>(trials_a);
  const double n2 = static_cast<double>(trials_b);
  std::vector<std::pair<double, double>> counts;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j >= eb.size() || (i < ea.size() && ea[i].first < eb[j].first)) {
      counts.emplace_back(ea[i].second * n1, 0.0);
      ++i;
    } else if (i >= ea.size() || eb[j].first < ea[i].first) {
      counts.emplace_back(0.0, eb[j].second * n2);
      ++j;
    } else {
      counts.emplace_back(ea[i].second * n1, eb[j].second * n2);
      ++i;
      ++j;
    }
  }
  const ChiSquareResult r = chi_square_two_sample_counts(counts, n1, n2);
  if (r.pvalue >= alpha) return ::testing::AssertionSuccess();
  std::ostringstream msg;
  msg << "two-sample chi-square rejects at alpha=" << alpha
      << ": stat=" << r.stat << " dof=" << r.dof << " p=" << r.pvalue
      << " cells=" << r.cells << " pooled=" << r.pooled_cells;
  return ::testing::AssertionFailure() << msg.str();
}

}  // namespace cdse::testing
