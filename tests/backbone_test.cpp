// Backbone-lite confirmation race (protocols/backbone.hpp).

#include "protocols/backbone.hpp"

#include <gtest/gtest.h>

#include "impl/balance.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

/// Drives submit then mines to resolution.
SchedulerPtr race_driver(const std::string& tag, std::size_t bound) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{act("submit_" + tag), act("mine_" + tag),
                            act("confirmed_" + tag), act("forked_" + tag)},
      bound, /*local_only=*/false);
}

TEST(Backbone, RejectsBadParameters) {
  EXPECT_THROW(make_confirmation_race("bb_a", 0, Rational(1, 4)),
               std::invalid_argument);
  EXPECT_THROW(make_confirmation_race("bb_b", 2, Rational(3, 2)),
               std::invalid_argument);
}

TEST(Backbone, ClosedFormMatchesHandValues) {
  // depth 1: fork iff the first block is adversarial.
  EXPECT_EQ(exact_fork_probability(1, Rational(1, 4)), Rational(1, 4));
  // depth 2, beta = 1/2: symmetric race -> 1/2.
  EXPECT_EQ(exact_fork_probability(2, Rational(1, 2)), Rational(1, 2));
  // beta = 0: never forks; beta = 1: always forks.
  EXPECT_EQ(exact_fork_probability(5, Rational(0)), Rational(0));
  EXPECT_EQ(exact_fork_probability(5, Rational(1)), Rational(1));
  // depth 2, beta = 1/4: b^2 + C(2,1) b^2 a = 1/16 + 2*(1/16)*(3/4).
  EXPECT_EQ(exact_fork_probability(2, Rational(1, 4)),
            Rational(1, 16) + Rational(2) * Rational(1, 16) *
                                  Rational(3, 4));
}

TEST(Backbone, AutomatonMatchesClosedForm) {
  for (std::uint32_t depth : {1u, 2u, 3u, 4u}) {
    const std::string tag = "bb_c" + std::to_string(depth);
    auto race = make_confirmation_race(tag, depth, Rational(1, 4));
    auto sched = race_driver(tag, 3 * depth + 4);
    const Rational p_fork = exact_action_probability(
        *race, *sched, act("forked_" + tag), 3 * depth + 6);
    EXPECT_EQ(p_fork, exact_fork_probability(depth, Rational(1, 4)))
        << "depth=" << depth;
    // The race always resolves within 2*depth - 1 mining steps.
    const Rational p_confirmed = exact_action_probability(
        *race, *sched, act("confirmed_" + tag), 3 * depth + 6);
    EXPECT_EQ(p_fork + p_confirmed, Rational(1));
  }
}

TEST(Backbone, MinorityAdversaryForkDecaysGeometrically) {
  const Rational beta(1, 4);
  Rational prev(1);
  for (std::uint32_t depth = 1; depth <= 8; ++depth) {
    const Rational p = exact_fork_probability(depth, beta);
    EXPECT_LT(p, prev) << "depth=" << depth;
    // Decay at least by the adversary's per-round handicap.
    EXPECT_LE(p, prev * Rational(3, 4)) << "depth=" << depth;
    prev = p;
  }
}

TEST(Backbone, HalfPowerAdversaryDoesNotDecay) {
  for (std::uint32_t depth : {1u, 3u, 6u}) {
    EXPECT_EQ(exact_fork_probability(depth, Rational(1, 2)),
              Rational(1, 2));
  }
}

TEST(Backbone, ImplementationEpsilonIsForkProbability) {
  const std::uint32_t depth = 3;
  const std::string rt = "bb_d";
  const std::string it = "bb_e";
  auto real = make_confirmation_race(rt, depth, Rational(1, 4));
  auto ideal = make_ideal_ledger(it);
  auto sr = race_driver(rt, 3 * depth + 4);
  auto si = race_driver(it, 4);
  // Compare through the accept-like perception "was it confirmed".
  AcceptInsight fr(act("confirmed_" + rt));
  AcceptInsight fi(act("confirmed_" + it));
  const auto dr = exact_fdist(*real, *sr, fr, 3 * depth + 6);
  const auto di = exact_fdist(*ideal, *si, fi, 8);
  EXPECT_EQ(balance_distance(dr, di),
            exact_fork_probability(depth, Rational(1, 4)));
}

TEST(Backbone, IdealLedgerAlwaysConfirms) {
  auto ideal = make_ideal_ledger("bb_f");
  auto sched = race_driver("bb_f", 4);
  EXPECT_EQ(exact_action_probability(*ideal, *sched,
                                     act("confirmed_bb_f"), 8),
            Rational(1));
}

}  // namespace
}  // namespace cdse
