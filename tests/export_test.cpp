// DOT / CSV exporters (psioa/export.hpp).

#include "psioa/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "protocols/coinflip.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

TEST(Export, DotContainsStatesAndActions) {
  auto coin = make_coin("ex_a", Rational(1, 3));
  const std::string dot = to_dot(*coin);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("idle"), std::string::npos);
  EXPECT_NE(dot.find("tossing"), std::string::npos);
  EXPECT_NE(dot.find("flip_ex_a"), std::string::npos);
  // Probabilistic branch annotated with exact weights.
  EXPECT_NE(dot.find("[1/3]"), std::string::npos);
  EXPECT_NE(dot.find("[2/3]"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Export, DotEdgeStylesEncodeActionClass) {
  auto coin = make_coin("ex_b", Rational(1, 2));
  const std::string dot = to_dot(*coin);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // input flip
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // internal toss
  EXPECT_NE(dot.find("style=solid"), std::string::npos);   // output head
}

TEST(Export, DotRespectsStateCap) {
  auto coin = make_coin("ex_c", Rational(1, 2));
  DotOptions opts;
  opts.max_states = 1;
  const std::string dot = to_dot(*coin, opts);
  // Only the start node is declared with a label line for q0.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  EXPECT_EQ(dot.find("tails"), std::string::npos);
}

TEST(Export, DotEscapesQuotes) {
  auto a = std::make_shared<ExplicitPsioa>("ex\"quoted");
  const State s = a->add_state("st\"ate");
  a->set_start(s);
  Signature sig;
  sig.in = acts({"ex_d_act"});
  a->set_signature(s, sig);
  a->add_step(s, act("ex_d_act"), s);
  a->validate();
  const std::string dot = to_dot(*a);
  EXPECT_NE(dot.find("ex\\\"quoted"), std::string::npos);
  EXPECT_NE(dot.find("st\\\"ate"), std::string::npos);
}

TEST(Export, CsvExactDistribution) {
  auto coin = make_coin("ex_e", Rational(1, 4));
  UniformScheduler sched(3);
  TraceInsight f;
  const auto dist = exact_fdist(*coin, sched, f, 8);
  std::ostringstream os;
  write_csv(os, dist, "trace");
  const std::string csv = os.str();
  EXPECT_NE(csv.find("trace,probability"), std::string::npos);
  EXPECT_NE(csv.find(",1/4"), std::string::npos);
  EXPECT_NE(csv.find(",3/4"), std::string::npos);
}

TEST(Export, CsvSampledDistribution) {
  Disc<std::string, double> d;
  d.add("a", 0.25);
  d.add("b", 0.75);
  std::ostringstream os;
  write_csv(os, d);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("value,probability"), std::string::npos);
  EXPECT_NE(csv.find("\"a\",0.25"), std::string::npos);
}

}  // namespace
}  // namespace cdse
