// Configurations, intrinsic transitions and PCA constraints
// (pca/*; Defs 2.9-2.19).

#include <gtest/gtest.h>

#include "pca/check.hpp"
#include "pca/dynamic_pca.hpp"
#include "pca/pca_compose.hpp"
#include "pca/pca_hide.hpp"
#include "protocols/ledger.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_emitter;
using testing::make_listener;

TEST(Registry, AddLookupAndDuplicateRejection) {
  AutomatonRegistry reg;
  const Aid a = reg.add(make_emitter("pr_em1", "pr_m1"));
  EXPECT_EQ(reg.by_name("pr_em1"), a);
  EXPECT_TRUE(reg.has("pr_em1"));
  EXPECT_FALSE(reg.has("pr_nope"));
  EXPECT_THROW(reg.add(make_emitter("pr_em1", "pr_m1b")), std::logic_error);
  EXPECT_THROW(reg.by_name("pr_nope"), std::out_of_range);
  EXPECT_THROW(reg.aut(99), std::out_of_range);
}

TEST(Configuration, SortsAndRejectsDuplicates) {
  Configuration c({{2, 0}, {1, 5}});
  EXPECT_EQ(c.items()[0].first, 1u);
  EXPECT_EQ(c.state_of(2), 0u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(3));
  EXPECT_THROW(Configuration({{1, 0}, {1, 1}}), std::invalid_argument);
  EXPECT_THROW(c.state_of(9), std::out_of_range);
}

TEST(Configuration, WithAndWithout) {
  Configuration c;
  c = c.with(3, 7).with(1, 2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.state_of(3), 7u);
  c = c.with(3, 8);
  EXPECT_EQ(c.state_of(3), 8u);
  c = c.without(1);
  EXPECT_FALSE(c.contains(1));
}

class ConfigFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_ = std::make_shared<AutomatonRegistry>();
    em_ = reg_->add(make_emitter("cf_em", "cf_msg"));
    li_ = reg_->add(make_listener("cf_li", "cf_msg"));
    bern_ = reg_->add(
        make_bernoulli("cf_bern", "cf_go", "cf_yes", "cf_no", Rational(1, 2)));
  }
  Configuration start_config() const {
    return Configuration{{{em_, reg_->aut(em_).start_state()},
                          {li_, reg_->aut(li_).start_state()}}};
  }
  RegistryPtr reg_;
  Aid em_ = 0, li_ = 0, bern_ = 0;
};

TEST_F(ConfigFixture, CompatibilityAndSignature) {
  const Configuration c = start_config();
  EXPECT_TRUE(config_compatible(*reg_, c));
  const Signature sig = config_signature(*reg_, c);
  EXPECT_EQ(sig.out, acts({"cf_msg"}));
  EXPECT_TRUE(sig.in.empty());
}

TEST_F(ConfigFixture, IncompatibleConfigDetected) {
  auto reg2 = std::make_shared<AutomatonRegistry>();
  const Aid e1 = reg2->add(make_emitter("cf_em2a", "cf_clash"));
  const Aid e2 = reg2->add(make_emitter("cf_em2b", "cf_clash"));
  Configuration c{{{e1, reg2->aut(e1).start_state()},
                   {e2, reg2->aut(e2).start_state()}}};
  EXPECT_FALSE(config_compatible(*reg2, c));
  EXPECT_THROW(config_signature(*reg2, c), IncompatibilityError);
}

TEST_F(ConfigFixture, ReduceDropsEmptySignatureAutomata) {
  // The emitter's "spent" state has an empty signature.
  Psioa& em = reg_->aut(em_);
  const State spent =
      em.transition(em.start_state(), act("cf_msg")).support()[0];
  Configuration c{{{em_, spent}, {li_, reg_->aut(li_).start_state()}}};
  EXPECT_FALSE(is_reduced(*reg_, c));
  const Configuration r = reduce(*reg_, c);
  EXPECT_FALSE(r.contains(em_));
  EXPECT_TRUE(r.contains(li_));
  EXPECT_TRUE(is_reduced(*reg_, r));
  EXPECT_EQ(reduce(*reg_, r), r);  // idempotent
}

TEST_F(ConfigFixture, PreservingTransitionMovesParticipants) {
  const Configuration c = start_config();
  const ConfigDist d = preserving_transition(*reg_, c, act("cf_msg"));
  ASSERT_EQ(d.support_size(), 1u);
  const Configuration c2 = d.support()[0];
  // No reduction in a preserving transition: the spent emitter remains.
  EXPECT_TRUE(c2.contains(em_));
  EXPECT_EQ(reg_->aut(em_).state_label(c2.state_of(em_)), "spent");
}

TEST_F(ConfigFixture, IntrinsicTransitionReducesAndCreates) {
  const Configuration c = start_config();
  const ConfigDist d =
      intrinsic_transition(*reg_, c, act("cf_msg"), {bern_});
  ASSERT_EQ(d.support_size(), 1u);
  const Configuration c2 = d.support()[0];
  EXPECT_FALSE(c2.contains(em_));  // destroyed (empty signature)
  EXPECT_TRUE(c2.contains(bern_));  // created at start state
  EXPECT_EQ(c2.state_of(bern_), reg_->aut(bern_).start_state());
}

TEST_F(ConfigFixture, IntrinsicTransitionRejectsOverlappingPhi) {
  const Configuration c = start_config();
  EXPECT_THROW(intrinsic_transition(*reg_, c, act("cf_msg"), {em_}),
               std::logic_error);
}

TEST_F(ConfigFixture, IntrinsicTransitionRequiresReducedSource) {
  Psioa& em = reg_->aut(em_);
  const State spent =
      em.transition(em.start_state(), act("cf_msg")).support()[0];
  Configuration c{{{em_, spent}, {li_, reg_->aut(li_).start_state()}}};
  EXPECT_THROW(intrinsic_transition(*reg_, c, act("cf_msg"), {}),
               std::logic_error);
}

TEST(DynamicPca, SatisfiesAllConstraints) {
  const LedgerSystem sys = make_ledger_system(3, "pca_a");
  const PcaCheckResult res = check_pca_constraints(*sys.dynamic, 8);
  EXPECT_TRUE(res.ok) << res.violation;
  EXPECT_GT(res.states_checked, 1u);
  EXPECT_GT(res.transitions_checked, 1u);
}

TEST(DynamicPca, CreationHappensOnOpen) {
  const LedgerSystem sys = make_ledger_system(2, "pca_b");
  DynamicPca& x = *sys.dynamic;
  const State q0 = x.start_state();
  EXPECT_EQ(x.config(q0).size(), 1u);  // just the parent
  const ActionId open1 = act("open1_pca_b");
  const auto phi = x.created(q0, open1);
  ASSERT_EQ(phi.size(), 1u);
  const StateDist d = x.transition(q0, open1);
  ASSERT_EQ(d.support_size(), 1u);
  const Configuration c1 = x.config(d.support()[0]);
  EXPECT_EQ(c1.size(), 2u);
  EXPECT_TRUE(c1.contains(phi[0]));
}

TEST(DynamicPca, DestructionOnClose) {
  const LedgerSystem sys = make_ledger_system(1, "pca_c");
  DynamicPca& x = *sys.dynamic;
  State q = x.start_state();
  q = x.transition(q, act("open1_pca_c")).support()[0];
  EXPECT_EQ(x.config(q).size(), 2u);
  q = x.transition(q, act("close1_pca_c")).support()[0];
  EXPECT_EQ(x.config(q).size(), 1u);  // subchain destroyed
  // Its actions are gone from the signature.
  EXPECT_FALSE(x.signature(q).contains(act("tx1_pca_c")));
}

TEST(DynamicPca, SignatureFollowsConfiguration) {
  const LedgerSystem sys = make_ledger_system(1, "pca_d");
  DynamicPca& x = *sys.dynamic;
  State q = x.start_state();
  EXPECT_TRUE(x.signature(q).is_output(act("open1_pca_d")));
  EXPECT_FALSE(x.signature(q).contains(act("tx1_pca_d")));
  q = x.transition(q, act("open1_pca_d")).support()[0];
  EXPECT_TRUE(x.signature(q).is_input(act("tx1_pca_d")));
}

TEST(DynamicPca, HiddenActionsArePolicyIntersectOutputs) {
  auto reg = std::make_shared<AutomatonRegistry>();
  const Aid em = reg->add(make_emitter("pca_e_em", "pca_e_msg"));
  auto x = std::make_shared<DynamicPca>(
      "pca_e", reg, std::vector<Aid>{em}, no_creation(),
      [](const Configuration&) { return acts({"pca_e_msg", "pca_e_other"}); });
  const State q0 = x->start_state();
  EXPECT_EQ(x->hidden_actions(q0), acts({"pca_e_msg"}));
  EXPECT_TRUE(x->signature(q0).is_internal(act("pca_e_msg")));
  const PcaCheckResult res = check_pca_constraints(*x, 4);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(PcaHide, AddsHiddenActionsAndKeepsConstraints) {
  const LedgerSystem sys = make_ledger_system(1, "pca_f");
  PcaPtr h = hide_pca(sys.dynamic, acts({"open1_pca_f"}));
  const State q0 = h->start_state();
  EXPECT_TRUE(h->signature(q0).is_internal(act("open1_pca_f")));
  EXPECT_EQ(h->hidden_actions(q0), acts({"open1_pca_f"}));
  const PcaCheckResult res = check_pca_constraints(*h, 6);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(PcaCompose, ClosureUnderComposition) {
  // Two independent single-subchain ledgers sharing a registry.
  auto reg = std::make_shared<AutomatonRegistry>();
  const Aid p1 = reg->add(make_parent_chain(1, "pca_g1", "_d"));
  const Aid s1 = reg->add(make_subchain(1, "pca_g1", true));
  const Aid p2 = reg->add(make_parent_chain(1, "pca_g2", "_d"));
  const Aid s2 = reg->add(make_subchain(1, "pca_g2", true));
  auto mk = [&](const std::string& name, Aid parent, Aid sub,
                const std::string& tag) {
    CreationPolicy cp = [sub, open = act("open1_" + tag)](
                            const Configuration& cfg, ActionId a) {
      std::vector<Aid> phi;
      if (a == open && !cfg.contains(sub)) phi.push_back(sub);
      return phi;
    };
    return std::make_shared<DynamicPca>(name, reg, std::vector<Aid>{parent},
                                        cp, no_hiding());
  };
  auto x1 = mk("pca_g_x1", p1, s1, "pca_g1");
  auto x2 = mk("pca_g_x2", p2, s2, "pca_g2");
  auto comp = compose_pca(x1, x2);
  const PcaCheckResult res = check_pca_constraints(*comp, 6);
  EXPECT_TRUE(res.ok) << res.violation;
  // Union configuration (Def 2.19).
  const Configuration c0 = comp->config(comp->start_state());
  EXPECT_EQ(c0.size(), 2u);
  EXPECT_TRUE(c0.contains(p1));
  EXPECT_TRUE(c0.contains(p2));
  // Union creation sets.
  const auto phi = comp->created(comp->start_state(), act("open1_pca_g1"));
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_EQ(phi[0], s1);
}

TEST(PcaCompose, RequiresSharedRegistry) {
  const LedgerSystem a = make_ledger_system(1, "pca_h1");
  const LedgerSystem b = make_ledger_system(1, "pca_h2");
  EXPECT_THROW(compose_pca(a.dynamic, b.dynamic), std::logic_error);
}

TEST(PcaCheck, DetectsBrokenCreatedMapping) {
  // A PCA whose created() disagrees with its transitions must fail the
  // top/down check. We fake it by wrapping a correct PCA and lying about
  // created().
  class LyingPca : public Pca {
   public:
    explicit LyingPca(std::shared_ptr<DynamicPca> inner)
        : Pca("liar", inner->registry_ptr()), inner_(std::move(inner)) {}
    State start_state() override { return inner_->start_state(); }
    Configuration config(State q) override { return inner_->config(q); }
    std::vector<Aid> created(State, ActionId) override { return {}; }  // lie
    ActionSet hidden_actions(State q) override {
      return inner_->hidden_actions(q);
    }

   protected:
    Signature compute_signature(State q) override {
      return inner_->signature(q);
    }
    StateDist compute_transition(State q, ActionId a) override {
      return inner_->transition(q, a);
    }

   private:
    std::shared_ptr<DynamicPca> inner_;
  };
  const LedgerSystem sys = make_ledger_system(1, "pca_i");
  LyingPca liar(sys.dynamic);
  const PcaCheckResult res = check_pca_constraints(liar, 4);
  EXPECT_FALSE(res.ok);
}

}  // namespace
}  // namespace cdse
