// Approximate implementation relation (impl/implementation.hpp;
// Def 4.12, Lemma 4.13, Theorem 4.16).

#include "impl/implementation.hpp"

#include <gtest/gtest.h>

#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_listener;

/// Bernoulli automaton family over a shared action vocabulary `tag`.
PsioaPtr bern(const std::string& inst, const std::string& tag,
              const Rational& p) {
  return make_bernoulli(inst, "go_" + tag, "yes_" + tag, "no_" + tag, p);
}

std::vector<LabeledPsioa> probe_envs(const std::string& tag) {
  return {{"probe",
           make_probe_env_matching("env_" + tag, {act("go_" + tag)},
                                   acts({"no_" + tag}), act("yes_" + tag),
                                   act("acc_" + tag))}};
}

std::vector<LabeledScheduler> local_uniform(std::size_t depth) {
  return {{"uniform", std::make_shared<UniformScheduler>(depth, true)}};
}

TEST(Implementation, IdenticalAutomataHaveZeroEpsilon) {
  const std::string tag = "impl_a";
  const auto report = check_implementation(
      bern("impl_a1", tag, Rational(1, 3)),
      bern("impl_a2", tag, Rational(1, 3)), probe_envs(tag),
      local_uniform(8), same_scheduler(), AcceptInsight(act("acc_" + tag)),
      12);
  EXPECT_EQ(report.max_eps, Rational(0));
  EXPECT_TRUE(report.holds_with(Rational(0)));
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].env, "probe");
}

TEST(Implementation, EpsilonEqualsBiasGap) {
  const std::string tag = "impl_b";
  const auto report = check_implementation(
      bern("impl_b1", tag, Rational(1, 4)),
      bern("impl_b2", tag, Rational(3, 4)), probe_envs(tag),
      local_uniform(8), same_scheduler(), AcceptInsight(act("acc_" + tag)),
      12);
  EXPECT_EQ(report.max_eps, Rational(1, 2));
  EXPECT_TRUE(report.holds_with(Rational(1, 2)));
  EXPECT_FALSE(report.holds_with(Rational(1, 3)));
}

TEST(Implementation, MaxOverMultipleEnvironmentsAndSchedulers) {
  const std::string tag = "impl_c";
  // A second, blind environment that never arms: epsilon 0 for it.
  auto blind = make_probe_env_matching(
      "env_blind_" + tag, {act("go_" + tag)}, acts({"no_" + tag}),
      act("never_" + tag), act("acc_" + tag));
  std::vector<LabeledPsioa> envs = probe_envs(tag);
  envs.push_back({"blind", blind});
  std::vector<LabeledScheduler> scheds = local_uniform(8);
  scheds.push_back({"short", std::make_shared<UniformScheduler>(1, true)});
  const auto report = check_implementation(
      bern("impl_c1", tag, Rational(0, 1)),
      bern("impl_c2", tag, Rational(1, 1)), envs, scheds, same_scheduler(),
      AcceptInsight(act("acc_" + tag)), 12);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.max_eps, Rational(1));
  // The blind environment contributes zero rows.
  for (const auto& row : report.rows) {
    if (row.env == "blind") {
      EXPECT_EQ(row.eps, Rational(0));
    }
  }
}

TEST(Implementation, Lemma413ContextCannotIncreaseEpsilon) {
  // For every context A3 compatible with both sides, the epsilon of
  // (E || A3 || A1) vs (E || A3 || A2) is at most the context-free one.
  const std::string tag = "impl_d";
  auto a1 = bern("impl_d1", tag, Rational(1, 8));
  auto a2 = bern("impl_d2", tag, Rational(7, 8));
  const auto base = check_implementation(
      a1, a2, probe_envs(tag), local_uniform(10), same_scheduler(),
      AcceptInsight(act("acc_" + tag)), 14);
  // Context: an unrelated listener plus an unrelated bernoulli.
  for (PsioaPtr ctx :
       {PsioaPtr(make_listener("impl_d_ctx1", "ctx_noise_d")),
        PsioaPtr(bern("impl_d_ctx2", "impl_d_ctx", Rational(1, 2)))}) {
    const auto with_ctx = check_implementation(
        compose(ctx, a1), compose(ctx, a2), probe_envs(tag),
        local_uniform(10), same_scheduler(),
        AcceptInsight(act("acc_" + tag)), 14);
    EXPECT_LE(with_ctx.max_eps, base.max_eps)
        << "context " << ctx->name() << " amplified distinguishability";
  }
}

TEST(Implementation, Theorem416TransitivityTriangle) {
  const std::string tag = "impl_e";
  auto e = probe_envs(tag)[0].automaton;
  auto s1 = compose(e, bern("impl_e1", tag, Rational(1, 8)));
  auto s2 = compose(e, bern("impl_e2", tag, Rational(1, 2)));
  auto s3 = compose(e, bern("impl_e3", tag, Rational(7, 8)));
  UniformScheduler sched(8, true);
  const TransitivityRow row = check_transitivity_case(
      *s1, *s2, *s3, sched, AcceptInsight(act("acc_" + tag)), 12);
  EXPECT_TRUE(row.triangle_holds);
  EXPECT_EQ(row.eps12, Rational(3, 8));
  EXPECT_EQ(row.eps23, Rational(3, 8));
  EXPECT_EQ(row.eps13, Rational(3, 4));
  // This chain is tight: eps13 == eps12 + eps23.
  EXPECT_EQ(row.eps13, row.eps12 + row.eps23);
}

// Transitivity over a grid of bias triples: the triangle inequality of
// Theorem 4.16 must hold for every chain.
class TransitivityGrid : public ::testing::TestWithParam<int> {};

TEST_P(TransitivityGrid, TriangleHolds) {
  const int i = GetParam();
  const Rational p1(i % 5, 8);
  const Rational p2((i * 3) % 9, 8);
  const Rational p3((i * 7) % 8, 8);
  const std::string tag = "impl_g" + std::to_string(i);
  auto e = make_probe_env_matching("env_" + tag, {act("go_" + tag)},
                                   acts({"no_" + tag}), act("yes_" + tag),
                                   act("acc_" + tag));
  auto s1 = compose(e, bern(tag + "_1", tag, p1));
  auto s2 = compose(e, bern(tag + "_2", tag, p2));
  auto s3 = compose(e, bern(tag + "_3", tag, p3));
  UniformScheduler sched(8, true);
  const TransitivityRow row = check_transitivity_case(
      *s1, *s2, *s3, sched, AcceptInsight(act("acc_" + tag)), 12);
  EXPECT_TRUE(row.triangle_holds)
      << "p1=" << p1 << " p2=" << p2 << " p3=" << p3;
}

INSTANTIATE_TEST_SUITE_P(Grid, TransitivityGrid, ::testing::Range(0, 12));

}  // namespace
}  // namespace cdse
