// Sequential-testing estimator suite (sched/seq_estimator.hpp +
// impl/balance.hpp sequential paths): the acceptance gate for the
// anytime-valid early-stopping layer and the importance-splitting
// estimator.
//
//   unit      -- spending schedule, radius formulas, verdict latching.
//   waves     -- IncrementalFdistRun: auto-tune contract, delta-merge
//                cost accounting (merge_entries), completed-run
//                bit-identity with the one-shot path.
//   coverage  -- simulation: the realized false-decision rate of the
//                confidence sequence stays under delta across seeded
//                replicates (the plug-in witness-event approximation is
//                pinned empirically, per the module doc).
//   zoo       -- sequential_balance_epsilon agrees with the exact
//                epsilon's side of the threshold on the five-stack zoo
//                at every worker count in {1, 2, 4, 8}, stopping early.
//   split     -- importance splitting: strata masses are exact, the
//                per-stratum conditional samplers and the reweighted
//                stratified f-dist pass the chi-square gates against
//                exact enumeration, and stratified tallies are
//                worker-count independent.
//   impl      -- sampled implementation grid + sequential family sweep:
//                verdicts match the fixed-trial reference with at least
//                a 2x draw reduction.
//
// Suite names all start with "SeqEst" so scripts/check.sh --tsan can
// select the concurrency-bearing cases by regex.

#include "sched/seq_estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/faulty.hpp"
#include "impl/balance.hpp"
#include "impl/family_sweep.hpp"
#include "impl/implementation.hpp"
#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/batch_sampler.hpp"
#include "sched/cone_measure.hpp"
#include "sched/exact_engine.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "stat_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 6;
constexpr std::size_t kTrials = 20000;
const std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------- stack zoo
// Same shapes as the batched-sampler differential suite, under fresh
// "se_" tags so the suites' action vocabularies stay disjoint.

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

/// E || MAC(k) || adv; `real` selects the side. Under the canonical
/// forgery word the exact real-vs-ideal epsilon is 2^-k.
PsioaFactory mac_side_factory(const std::string& tag, bool real) {
  return [tag, real]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    const StructuredPsioa& side = real ? mac.real : mac.ideal;
    return compose(env, compose(side.ptr(), adv));
  };
}

SchedulerFactory mac_word_factory(const std::string& tag) {
  return [tag]() -> SchedulerPtr {
    return std::make_shared<SequenceScheduler>(
        std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                              act("forged_" + tag), act("acc_" + tag)},
        /*local_only=*/true);
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
}

struct Stack {
  const char* label;
  PsioaFactory make;
  /// Small-support print insight for the self-pair below-decisions:
  /// certifying "below" on a support of size k needs n >> k / eps^2
  /// (see the seq_estimator module doc), so the zoo restricts each
  /// stack's perception to one or two characteristic actions. The
  /// full-trace insight stays in play via the MAC and determinism
  /// cases, where the word scheduler keeps the support small.
  std::shared_ptr<InsightFunction> insight;
};

std::vector<Stack> stack_zoo() {
  return {
      {"composed", composed_factory(3, "se_c"),
       std::make_shared<PrintInsight>(acts({"iout0_se_ca"}))},
      {"hidden_renamed", hidden_renamed_factory(5, "se_h"),
       std::make_shared<PrintInsight>(acts({"iout0_se_ha#in"}))},
      {"mac", mac_side_factory("se_m", true),
       std::make_shared<PrintInsight>(acts({"forged_se_m"}))},
      {"ledger", ledger_factory("se_l"),
       std::make_shared<PrintInsight>(acts({"ack1_se_l"}))},
      {"faulty_channel", faulty_channel_factory("se_f"),
       std::make_shared<PrintInsight>(acts({"recv0_se_f"}))},
  };
}

// ------------------------------------------------------------------ unit

TEST(SeqEstUnit, SpendingScheduleSumsToDelta) {
  const double delta = 0.05;
  double spent = 0.0;
  for (std::size_t w = 1; w <= 100000; ++w) spent += seq_spend(delta, w);
  EXPECT_LE(spent, delta + 1e-12);
  EXPECT_GT(spent, delta * 0.999);  // sum_w 1/(w(w+1)) telescopes to 1
  EXPECT_GT(seq_spend(delta, 1), seq_spend(delta, 2));
}

TEST(SeqEstUnit, HoeffdingRadiusMatchesClosedForm) {
  const double delta = 1e-4;
  const double n = 4096.0;
  EXPECT_NEAR(seq_hoeffding_radius(1.0 / n, delta),
              std::sqrt(std::log(2.0 / delta) / (2.0 * n)), 1e-12);
  EXPECT_EQ(seq_hoeffding_radius(0.0, delta), 0.0);  // exact side
  EXPECT_EQ(seq_hoeffding_radius(1.0 / n, 0.0), 1.0);
  // Stratified scale: two strata at weight 1/2 and n/2 samples each give
  // 2 * (1/4) / (n/2) = 1/n -- same radius as the unstratified mean.
  const double scale = 2.0 * 0.25 / (n / 2.0);
  EXPECT_NEAR(seq_hoeffding_radius(scale, delta),
              seq_hoeffding_radius(1.0 / n, delta), 1e-12);
}

TEST(SeqEstUnit, BernsteinBeatsHoeffdingAtLowVariance) {
  const double delta = 1e-4;
  const double scale = 1.0 / 8192.0;
  // Witness event probability 1/16: the variance term should cut the
  // radius well below the distribution-free bound.
  EXPECT_LT(seq_bernstein_radius(0.0625, scale, delta),
            0.7 * seq_hoeffding_radius(scale, delta));
  // And never exceed it, at any plug-in mean.
  for (double mean : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_LE(seq_bernstein_radius(mean, scale, delta),
              seq_hoeffding_radius(scale, delta) + 1e-15);
  }
}

TEST(SeqEstUnit, VerdictsFromSyntheticTalliesAndLatching) {
  SequentialPolicy policy = SequentialPolicy::deciding(0.1, 1u << 20, 0.01);
  SeqEstimator est(policy);
  // Far-above case: left puts 60% on "a", right 10% -- eps = 0.5.
  const std::size_t n = 8192;
  Disc<Perception, double> l, r;
  l.add("a", 0.6 * n);
  l.add("b", 0.4 * n);
  r.add("a", 0.1 * n);
  r.add("b", 0.9 * n);
  const SeqDecision d = est.look(l, 0, r, 0, n, 2 * n);
  EXPECT_EQ(d.verdict, SeqVerdict::kAboveThreshold);
  EXPECT_NEAR(d.estimate, 0.5, 1e-12);
  EXPECT_EQ(d.looks, 1u);
  // Latching: contradictory tallies after a verdict change nothing.
  const SeqDecision d2 = est.look(l, 0, l, 0, n, 4 * n);
  EXPECT_EQ(d2.verdict, SeqVerdict::kAboveThreshold);
  EXPECT_EQ(est.looks(), 1u);
}

TEST(SeqEstUnit, CensoringSlackBlocksPrematureVerdicts) {
  SequentialPolicy policy = SequentialPolicy::deciding(0.15, 1u << 20, 0.01);
  const std::size_t n = 8192;
  Disc<Perception, double> l, r;
  l.add("a", 0.2 * n);
  l.add("b", 0.8 * n);
  r.add("a", 0.2 * n);
  r.add("b", 0.8 * n);
  // Identical tallies: decidedly below... unless a third of the trials
  // are still live, in which case the bracket must hold the verdict.
  SeqEstimator settled(policy);
  EXPECT_EQ(settled.look(l, 0, r, 0, n, n).verdict,
            SeqVerdict::kBelowThreshold);
  SeqEstimator censored(policy);
  const SeqDecision d = censored.look(l, n / 3, r, n / 3, n, n);
  EXPECT_EQ(d.verdict, SeqVerdict::kUndecided);
  EXPECT_GT(d.censor_slack, 0.3);
}

TEST(SeqEstUnit, FixedPolicyNeverDecides) {
  SequentialPolicy policy = SequentialPolicy::fixed(4096);
  EXPECT_TRUE(policy.active());
  EXPECT_FALSE(policy.sequential());
  SeqEstimator est(policy);
  Disc<Perception, double> l, r;
  l.add("a", 4096.0);
  r.add("b", 4096.0);
  EXPECT_EQ(est.look(l, 0, r, 0, 4096, 4096).verdict,
            SeqVerdict::kUndecided);
}

// ----------------------------------------------------------------- waves

TEST(SeqEstWaves, AutoTuneTargetsDrawsPerWavePerChunk) {
  ThreadPool pool(1);
  TraceInsight f;
  ParallelSampler sampler(mac_side_factory("se_w1", true),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  // One chunk of 100 trials: auto-tune picks max(1, 2048/100) = 20.
  IncrementalFdistRun small(sampler, f, 100, 7, kDepth, pool);
  EXPECT_EQ(small.rounds_per_wave(), 20u);
  // One chunk of >= 2048 trials: one round per wave.
  IncrementalFdistRun big(sampler, f, 4096, 7, kDepth, pool);
  EXPECT_EQ(big.rounds_per_wave(), 1u);
  // Explicit values pass through untouched.
  IncrementalFdistRun fixed(sampler, f, 100, 7, kDepth, pool, 3);
  EXPECT_EQ(fixed.rounds_per_wave(), 3u);
  // The surfaced report carries the effective value.
  while (!small.done()) {
    EXPECT_EQ(small.step_wave().rounds_per_wave, 20u);
  }
}

TEST(SeqEstWaves, DeltaMergeWorkIsBoundedByDistinctExecutions) {
  ThreadPool pool(4);
  TraceInsight f;
  ParallelSampler sampler(composed_factory(3, "se_c"),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  IncrementalFdistRun run(sampler, f, kTrials, 11, kDepth, pool, 1);
  std::size_t merged_total = 0;
  std::size_t waves = 0;
  while (!run.done()) {
    merged_total += run.step_wave().merge_entries;
    ++waves;
  }
  EXPECT_GT(waves, 1u);
  EXPECT_GT(merged_total, 0u);
  // Every merged entry is a terminal class discovered exactly once.
  EXPECT_LE(merged_total, run.batch_stats().distinct_executions);
  // The running tally accounts for every trial.
  double total = 0.0;
  for (const auto& [perc, c] : run.counts().entries()) total += c;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kTrials));
}

TEST(SeqEstWaves, CompletedRunIsBitIdenticalToOneShot) {
  ThreadPool pool(4);
  TraceInsight f;
  ParallelSampler sampler(mac_side_factory("se_w2", true),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  const auto one_shot =
      sampler.sample_fdist(f, kTrials, 9, kDepth, pool, SamplingMode::kBatched);
  IncrementalFdistRun run(sampler, f, kTrials, 9, kDepth, pool, 1);
  const auto inc = run.final_fdist();
  ASSERT_EQ(inc.entries().size(), one_shot.entries().size());
  for (std::size_t i = 0; i < inc.entries().size(); ++i) {
    EXPECT_EQ(inc.entries()[i].first, one_shot.entries()[i].first);
    EXPECT_DOUBLE_EQ(inc.entries()[i].second, one_shot.entries()[i].second);
  }
}

TEST(SeqEstWaves, EarlyStopReturnsNormalizedPartial) {
  ThreadPool pool(2);
  TraceInsight f;
  ParallelSampler sampler(ledger_factory("se_l"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  std::size_t waves_seen = 0;
  const auto partial = sampler.sample_fdist_incremental(
      f, kTrials, 13, kDepth, pool, 1,
      [&](const ParallelSampler::WaveReport& rep,
          const Disc<Perception, double>& fdist) {
        ++waves_seen;
        if (rep.trials_done == 0) return true;
        double mass = 0.0;
        for (const auto& [perc, p] : fdist.entries()) mass += p;
        EXPECT_NEAR(mass, 1.0, 1e-9);
        return false;  // stop at the first wave with terminal trials
      });
  EXPECT_GT(waves_seen, 0u);
  double mass = 0.0;
  for (const auto& [perc, p] : partial.entries()) mass += p;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(SeqEstWaves, SerialModeRejected) {
  ThreadPool pool(1);
  TraceInsight f;
  ParallelSampler sampler(ledger_factory("se_l"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  EXPECT_THROW(IncrementalFdistRun(sampler, f, 100, 1, kDepth, pool, 1,
                                   SamplingMode::kSerial),
               std::invalid_argument);
}

// -------------------------------------------------------------- coverage
// Simulation-based calibration of the confidence sequence itself, on
// synthetic Bernoulli tallies (no automata): with the true epsilon
// sitting exactly ON the threshold, ANY verdict requires the confidence
// sequence to exclude the truth, so the realized decision rate across
// replicates must stay under delta (plus binomial slack on the
// replicate count). All draws are seeded: a given build either passes
// always or fails always.

struct SyntheticDecision {
  SeqVerdict verdict = SeqVerdict::kUndecided;
};

SyntheticDecision simulate_decision(double p_l, double p_r, double threshold,
                                    double delta, std::size_t budget,
                                    std::uint64_t seed) {
  SequentialPolicy policy = SequentialPolicy::deciding(threshold, budget,
                                                       delta);
  SeqEstimator est(policy);
  Xoshiro256 rng = Xoshiro256::for_stream(seed, 77);
  std::size_t n = 0;
  std::size_t a_l = 0;
  std::size_t a_r = 0;
  std::size_t stage = 512;
  while (n < budget) {
    const std::size_t take = std::min(stage, budget - n);
    for (std::size_t t = 0; t < take; ++t) {
      if (rng.uniform() < p_l) ++a_l;
      if (rng.uniform() < p_r) ++a_r;
    }
    n += take;
    stage *= 2;
    Disc<Perception, double> l, r;
    l.add("a", static_cast<double>(a_l));
    l.add("b", static_cast<double>(n - a_l));
    r.add("a", static_cast<double>(a_r));
    r.add("b", static_cast<double>(n - a_r));
    const SeqDecision d = est.look(l, 0, r, 0, n, 2 * n);
    if (d.verdict != SeqVerdict::kUndecided) return {d.verdict};
  }
  return {};
}

TEST(SeqEstCoverage, FalseDecisionRateStaysUnderDelta) {
  // eps_true = |0.5 - 0.3| = 0.2 == threshold: every decision is false.
  const double delta = 0.05;
  const std::size_t kReplicates = 400;
  std::size_t decided = 0;
  for (std::uint64_t r = 0; r < kReplicates; ++r) {
    const SyntheticDecision d =
        simulate_decision(0.5, 0.3, 0.2, delta, 16384, 9000 + r);
    if (d.verdict != SeqVerdict::kUndecided) ++decided;
  }
  // Budget: delta * R expected worst case, plus ~3 sigma of binomial
  // noise on the replicate count. In practice the bound is conservative
  // and `decided` sits near zero; this guards gross miscalibration.
  const double slack =
      3.0 * std::sqrt(kReplicates * delta * (1.0 - delta));
  EXPECT_LE(static_cast<double>(decided), kReplicates * delta + slack);
}

TEST(SeqEstCoverage, PowerAtClearMargins) {
  // eps_true = 0.3 against threshold 0.1: nearly every replicate should
  // decide above, and below-decisions (false) stay under delta.
  const double delta = 0.05;
  const std::size_t kReplicates = 100;
  std::size_t above = 0;
  std::size_t below = 0;
  for (std::uint64_t r = 0; r < kReplicates; ++r) {
    const SyntheticDecision d =
        simulate_decision(0.6, 0.3, 0.1, delta, 16384, 41000 + r);
    if (d.verdict == SeqVerdict::kAboveThreshold) ++above;
    if (d.verdict == SeqVerdict::kBelowThreshold) ++below;
  }
  EXPECT_GE(above, 90u);
  const double slack =
      3.0 * std::sqrt(kReplicates * delta * (1.0 - delta));
  EXPECT_LE(static_cast<double>(below), kReplicates * delta + slack);
}

// ------------------------------------------------------------------- zoo

TEST(SeqEstZoo, SelfPairsDecideBelowEarlyAtEveryWorkerCount) {
  const SequentialPolicy policy =
      SequentialPolicy::deciding(0.2, kTrials, 1e-3);
  for (const Stack& stack : stack_zoo()) {
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const SequentialEpsilon se = sequential_balance_epsilon(
          stack.make, uniform_factory(kDepth), stack.make,
          uniform_factory(kDepth), *stack.insight, policy, 17, kDepth,
          pool);
      // Exact eps is 0 (same factory both sides), far below 0.2.
      EXPECT_EQ(se.verdict, SeqVerdict::kBelowThreshold)
          << stack.label << " @" << workers;
      EXPECT_LT(se.trials, kTrials) << stack.label << " @" << workers;
      EXPECT_LT(se.estimate, 0.1) << stack.label << " @" << workers;
      EXPECT_GT(se.looks, 0u);
      EXPECT_GT(se.draws, 0u);
    }
  }
}

TEST(SeqEstZoo, MacVerdictsAgreeWithExactEpsilonBothSides) {
  // Exact eps(real, ideal) under the forgery word is 2^-4 = 0.0625.
  const std::string tag = "se_zm";
  TraceInsight f;
  const std::size_t depth = 12;
  {
    auto lhs = mac_side_factory(tag, true)();
    auto rhs = mac_side_factory(tag, false)();
    const SchedulerPtr sl = mac_word_factory(tag)();
    const SchedulerPtr sr = mac_word_factory(tag)();
    EXPECT_EQ(exact_balance_epsilon(*lhs, *sl, *rhs, *sr, f, depth),
              Rational(1, 16));
  }
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    const SequentialEpsilon above = sequential_balance_epsilon(
        mac_side_factory(tag, true), mac_word_factory(tag),
        mac_side_factory(tag, false), mac_word_factory(tag), f,
        SequentialPolicy::deciding(0.03, 1u << 16, 1e-3), 23, depth, pool);
    EXPECT_EQ(above.verdict, SeqVerdict::kAboveThreshold) << workers;
    EXPECT_NEAR(above.estimate, 0.0625, 0.03) << workers;
    const SequentialEpsilon below = sequential_balance_epsilon(
        mac_side_factory(tag, true), mac_word_factory(tag),
        mac_side_factory(tag, false), mac_word_factory(tag), f,
        SequentialPolicy::deciding(0.2, 1u << 16, 1e-3), 23, depth, pool);
    EXPECT_EQ(below.verdict, SeqVerdict::kBelowThreshold) << workers;
    EXPECT_LT(below.trials, std::size_t{1} << 16) << workers;
  }
}

TEST(SeqEstZoo, SequentialRunsAreDeterministicAtFixedPoolSize) {
  TraceInsight f;
  ThreadPool pool(4);
  const SequentialPolicy policy =
      SequentialPolicy::deciding(0.1, kTrials, 1e-3);
  auto run = [&] {
    return sequential_balance_epsilon(
        composed_factory(3, "se_c"), uniform_factory(kDepth),
        hidden_renamed_factory(5, "se_h"), uniform_factory(kDepth), f,
        policy, 31, kDepth, pool);
  };
  const SequentialEpsilon a = run();
  const SequentialEpsilon b = run();
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.draws, b.draws);
  EXPECT_EQ(a.looks, b.looks);
}

TEST(SeqEstZoo, FixedPolicyRunsWholeBudget) {
  TraceInsight f;
  ThreadPool pool(2);
  const SequentialEpsilon se = sequential_balance_epsilon(
      ledger_factory("se_l"), uniform_factory(kDepth), ledger_factory("se_l"),
      uniform_factory(kDepth), f, SequentialPolicy::fixed(4096), 5, kDepth,
      pool);
  EXPECT_EQ(se.trials, 4096u);
  EXPECT_EQ(se.looks, 0u);
  // Fixed policies still report a point verdict against the threshold
  // (0 here, so any positive sampling noise lands above).
  EXPECT_NE(se.verdict, SeqVerdict::kUndecided);
}

// ----------------------------------------------------------------- split

TEST(SeqEstSplit, StrataMassesAreExactlyComplete) {
  auto aut = mac_side_factory("se_s1", true)();
  const SchedulerPtr sched = mac_word_factory("se_s1")();
  TraceInsight f;
  const PrefixStrata strata = expand_prefix_strata(*aut, *sched, f, 2);
  Rational settled_mass;
  for (const auto& [perc, p] : strata.settled.entries()) settled_mass += p;
  EXPECT_EQ(settled_mass + strata.live_mass, Rational(1));
  EXPECT_FALSE(strata.live.empty());
  for (const PrefixStratum& s : strata.live) {
    EXPECT_EQ(s.frag.length(), 2u);
    EXPECT_FALSE(s.prob.is_zero());
  }
  // split_depth == 0: one root stratum carrying all the mass.
  const PrefixStrata root = expand_prefix_strata(*aut, *sched, f, 0);
  ASSERT_EQ(root.live.size(), 1u);
  EXPECT_EQ(root.live[0].prob, Rational(1));
  EXPECT_TRUE(root.settled.entries().empty());
}

TEST(SeqEstSplit, ConditionalSamplersMatchExactConditionals) {
  // Per-stratum GOF: each prefix-conditioned cursor must sample the
  // exact conditional law of its stratum.
  TraceInsight f;
  ThreadPool pool(4);
  ParallelSampler sampler(composed_factory(3, "se_c"),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  auto view = sampler.worker_view();
  const SchedulerPtr sched = sampler.worker_scheduler();
  const PrefixStrata strata = expand_prefix_strata(*view, *sched, f, 2);
  ASSERT_FALSE(strata.live.empty());
  const std::size_t kPerStratum = 8000;
  const std::vector<std::size_t> alloc(strata.live.size(), kPerStratum);
  const auto counts = stratified_sample_counts(sampler, f, strata, alloc, 43,
                                               kDepth, pool);
  ASSERT_EQ(counts.size(), strata.live.size());
  for (std::size_t i = 0; i < strata.live.size(); ++i) {
    // Exact conditional f-dist of stratum i: enumerate its subtree with
    // prefix probability 1 (the cone sums to 1, so no renormalization).
    ExactDisc<Perception> exact_cond;
    ExecFragment path = strata.live[i].frag;
    enumerate_cone(*view, *sched, kDepth, path, Rational(1),
                   [&](const ExecFragment& alpha, const Rational& p) {
                     exact_cond.add(f.apply(*view, alpha), p);
                   });
    Disc<Perception, double> sampled;
    for (const auto& [perc, c] : counts[i].entries()) {
      sampled.add(perc, c / static_cast<double>(kPerStratum));
    }
    EXPECT_TRUE(cdse::testing::fdist_matches_exact(exact_cond, sampled,
                                                   kPerStratum))
        << "stratum " << i;
  }
}

TEST(SeqEstSplit, StratifiedFdistIsUnbiasedAtProportionalAllocation) {
  // The headline unbiasedness gate: proportional allocation (boost = 0)
  // keeps the stratified estimator's variance at or below multinomial
  // sampling, so the chi-square GOF against the exact full-depth f-dist
  // is a conservative rejection test at kStatAlpha.
  TraceInsight f;
  ThreadPool pool(4);
  ParallelSampler sampler(mac_side_factory("se_s2", true),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  auto view = sampler.worker_view();
  const SchedulerPtr sched = sampler.worker_scheduler();
  const PrefixStrata strata = expand_prefix_strata(*view, *sched, f, 2);
  ASSERT_FALSE(strata.live.empty());
  const std::size_t kTotal = 40000;
  std::vector<std::size_t> alloc(strata.live.size());
  std::vector<std::uint64_t> n(strata.live.size());
  for (std::size_t i = 0; i < strata.live.size(); ++i) {
    const double share = strata.live[i].prob.to_double();
    alloc[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(share * kTotal + 0.5));
    n[i] = alloc[i];
  }
  const auto counts = stratified_sample_counts(sampler, f, strata, alloc, 47,
                                               kDepth, pool);
  const Disc<Perception, double> reweighted =
      stratified_fdist(strata, counts, n);
  double mass = 0.0;
  for (const auto& [perc, p] : reweighted.entries()) mass += p;
  EXPECT_NEAR(mass, 1.0, 1e-9);
  auto truth_aut = mac_side_factory("se_s2", true)();
  const SchedulerPtr truth_sched = uniform_factory(kDepth)();
  const ExactDisc<Perception> exact =
      exact_fdist(*truth_aut, *truth_sched, f, kDepth);
  EXPECT_TRUE(
      cdse::testing::fdist_matches_exact(exact, reweighted, kTotal));
}

TEST(SeqEstSplit, StratifiedTalliesAreWorkerCountIndependent) {
  TraceInsight f;
  ParallelSampler sampler(composed_factory(3, "se_c"),
                          uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  auto view = sampler.worker_view();
  const SchedulerPtr sched = sampler.worker_scheduler();
  const PrefixStrata strata = expand_prefix_strata(*view, *sched, f, 2);
  const std::vector<std::size_t> alloc(strata.live.size(), 2000);
  std::vector<std::vector<Disc<Perception, double>>> runs;
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    runs.push_back(stratified_sample_counts(sampler, f, strata, alloc, 51,
                                            kDepth, pool));
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    ASSERT_EQ(runs[w].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_EQ(runs[w][i].entries().size(), runs[0][i].entries().size());
      for (std::size_t e = 0; e < runs[0][i].entries().size(); ++e) {
        EXPECT_EQ(runs[w][i].entries()[e].first,
                  runs[0][i].entries()[e].first);
        EXPECT_DOUBLE_EQ(runs[w][i].entries()[e].second,
                         runs[0][i].entries()[e].second);
      }
    }
  }
}

TEST(SeqEstSplit, SplitEpsilonAgreesWithPlainAndExact) {
  const std::string tag = "se_s3";
  TraceInsight f;
  ThreadPool pool(4);
  const std::size_t depth = 12;
  SequentialPolicy split = SequentialPolicy::deciding(0.03, 1u << 16, 1e-3);
  split.split_depth = 2;
  const SequentialEpsilon se = sequential_balance_epsilon(
      mac_side_factory(tag, true), mac_word_factory(tag),
      mac_side_factory(tag, false), mac_word_factory(tag), f, split, 61,
      depth, pool);
  EXPECT_GT(se.strata, 0u);
  EXPECT_EQ(se.verdict, SeqVerdict::kAboveThreshold);
  EXPECT_NEAR(se.estimate, 0.0625, 0.03);
  // Fixed-budget split run: the point estimate should sit close to the
  // exact epsilon (tighter than the sampling noise of the plain path,
  // since the word mass is handled exactly by the strata weights).
  SequentialPolicy split_fixed = SequentialPolicy::fixed(1u << 14);
  split_fixed.split_depth = 2;
  split_fixed.threshold = 0.03;
  const SequentialEpsilon fixed = sequential_balance_epsilon(
      mac_side_factory(tag, true), mac_word_factory(tag),
      mac_side_factory(tag, false), mac_word_factory(tag), f, split_fixed,
      61, depth, pool);
  EXPECT_NEAR(fixed.estimate, 0.0625, 0.02);
  EXPECT_EQ(fixed.verdict, SeqVerdict::kAboveThreshold);
}

// ------------------------------------------------------------------ impl

TEST(SeqEstImpl, SampledImplementationGridAgreesWithFixedAtLowerCost) {
  const std::string tag = "se_i1";
  TraceInsight f;
  ThreadPool pool(4);
  const std::size_t depth = 12;
  const RealIdealPair mac = make_otmac_pair(4, tag);
  const PsioaFactory a = [mac]() { return mac.real.ptr(); };
  const PsioaFactory b = [mac]() { return mac.ideal.ptr(); };
  const std::vector<LabeledPsioaFactory> envs = {
      {"probe", [tag]() -> PsioaPtr {
         auto env = make_probe_env_matching(
             "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
             act("forged_" + tag), act("acc_" + tag));
         auto adv =
             make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
         return compose(env, adv);
       }}};
  const std::vector<LabeledSchedulerFactory> schedulers = {
      {"word", mac_word_factory(tag)}};
  // NOTE the env factory above carries the adversary too, so composing
  // env.make() with a() yields (env || adv) || mac -- same closed system
  // as the zoo stack up to composition order, which epsilon ignores.
  const auto seq = check_implementation_sampled(
      a, b, envs, schedulers, same_scheduler(), f, depth, pool,
      SequentialPolicy::deciding(0.03, 1u << 16, 1e-3), 71);
  ASSERT_EQ(seq.rows.size(), 1u);
  EXPECT_EQ(seq.rows[0].verdict, SeqVerdict::kAboveThreshold);
  EXPECT_FALSE(seq.all_below);
  EXPECT_GT(seq.total_draws, 0u);
  const auto fixed = check_implementation_sampled(
      a, b, envs, schedulers, same_scheduler(), f, depth, pool,
      SequentialPolicy::fixed(1u << 16), 71);
  ASSERT_EQ(fixed.rows.size(), 1u);
  // Same side of the threshold (fixed policies default threshold 0;
  // compare the estimates directly instead).
  EXPECT_NEAR(fixed.rows[0].eps, seq.rows[0].eps, 0.05);
  // The E22 floor: the sequential grid costs at most half the draws.
  EXPECT_GE(fixed.total_draws, 2 * seq.total_draws);
  // A threshold safely above eps turns every cell below.
  const auto below = check_implementation_sampled(
      a, b, envs, schedulers, same_scheduler(), f, depth, pool,
      SequentialPolicy::deciding(0.2, 1u << 16, 1e-3), 71);
  EXPECT_TRUE(below.all_below);
}

PsioaFamily mac_side_family(const std::string& base, bool real) {
  return PsioaFamily{
      base + (real ? "_real" : "_ideal"),
      [base, real](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(k, tag);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv =
            make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
        const StructuredPsioa& side = real ? pair.real : pair.ideal;
        return compose(env, compose(side.ptr(), adv));
      }};
}

SchedulerFamily mac_word_family(const std::string& base) {
  return SchedulerFamily{
      "word", [base](std::uint32_t k) -> SchedulerPtr {
        const std::string tag = base + std::to_string(k);
        return std::make_shared<SequenceScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                  act("forged_" + tag), act("acc_" + tag)},
            /*local_only=*/true);
      }};
}

TEST(SeqEstImpl, FamilySweepSequentialCellsMatchExactSides) {
  // ks 3 and 5 sample sequentially against threshold 0.08: exact eps is
  // 0.125 (above) and 0.03125 (below). Exact cells are untouched. (k=4
  // would put the below cell at 0.0625 -- a 0.0175 margin the sound
  // missing-mass-aware upper envelope cannot close within the budget.)
  const std::string base = "se_i2";
  ThreadPool pool(4);
  const std::vector<std::uint32_t> ks{1, 2, 3, 5};
  const SequentialPolicy seq =
      SequentialPolicy::deciding(0.08, 1u << 16, 1e-3);
  const FamilySweepReport report = family_epsilon_sweep(
      mac_side_family(base, true), mac_side_family(base, false),
      mac_word_family(base), TraceInsight(), ks, 12,
      /*exact_upto=*/2, /*trials=*/0, /*seed=*/3, pool, {}, seq);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_TRUE(report.rows[0].exact.has_value());
  EXPECT_TRUE(report.rows[1].exact.has_value());
  EXPECT_EQ(report.rows[0].verdict, SeqVerdict::kUndecided);
  ASSERT_FALSE(report.rows[2].exact.has_value());
  ASSERT_FALSE(report.rows[3].exact.has_value());
  EXPECT_EQ(report.rows[2].verdict, SeqVerdict::kAboveThreshold);
  EXPECT_EQ(report.rows[3].verdict, SeqVerdict::kBelowThreshold);
  EXPECT_GT(report.rows[2].draws, 0u);
  EXPECT_LT(report.rows[2].trials_used, std::size_t{1} << 16);
  EXPECT_LT(report.rows[3].trials_used, std::size_t{1} << 16);
  EXPECT_EQ(report.total_draws, report.rows[2].draws + report.rows[3].draws);
  // Fixed-trial reference: same sides, at least 2x the draws.
  const FamilySweepReport fixed = family_epsilon_sweep(
      mac_side_family(base, true), mac_side_family(base, false),
      mac_word_family(base), TraceInsight(), ks, 12,
      /*exact_upto=*/2, /*trials=*/0, /*seed=*/3, pool, {},
      SequentialPolicy::fixed(1u << 16));
  EXPECT_GT(fixed.rows[2].sampled, 0.08);
  EXPECT_LT(fixed.rows[3].sampled, 0.08);
  EXPECT_GE(fixed.total_draws, 2 * report.total_draws);
}

}  // namespace
}  // namespace cdse
