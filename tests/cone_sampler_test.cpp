// Exact cone measure vs Monte-Carlo sampling
// (sched/cone_measure.hpp, sched/sampler.hpp; Section 3).

#include <gtest/gtest.h>

#include "protocols/coinflip.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "stat_util.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

TEST(ConeMeasure, TotalMassIsOne) {
  auto coin = make_coin("cm_a", Rational(1, 3));
  UniformScheduler sched(4);
  Rational total;
  for_each_halted_execution(*coin, sched, 10,
                            [&](const ExecFragment&, const Rational& p) {
                              total += p;
                            });
  EXPECT_EQ(total, Rational(1));
}

TEST(ConeMeasure, CoinOutcomeProbabilitiesExact) {
  auto coin = make_coin("cm_b", Rational(1, 3));
  // Drive exactly one flip-toss-report cycle.
  SequenceScheduler sched({act("flip_cm_b"), act("toss_cm_b"),
                           act("head_cm_b")});
  // P[head emitted] = 1/3 (the head branch reaches the third letter; the
  // tail branch halts because "head" is not enabled).
  EXPECT_EQ(exact_action_probability(*coin, sched, act("head_cm_b"), 10),
            Rational(1, 3));
  EXPECT_EQ(exact_action_probability(*coin, sched, act("tail_cm_b"), 10),
            Rational(0));
}

TEST(ConeMeasure, FdistOverTraces) {
  auto coin = make_coin("cm_c", Rational(1, 4));
  UniformScheduler sched(3);  // flip, toss, report
  TraceInsight f;
  const auto dist = exact_fdist(*coin, sched, f, 10);
  // Two perceptions: flip.head / flip.tail (toss is internal).
  EXPECT_EQ(dist.mass("flip_cm_c.head_cm_c"), Rational(1, 4));
  EXPECT_EQ(dist.mass("flip_cm_c.tail_cm_c"), Rational(3, 4));
  EXPECT_EQ(dist.total(), Rational(1));
}

TEST(ConeMeasure, SchedulerHaltMassAppearsAsShortPerceptions) {
  auto coin = make_coin("cm_d", Rational(1, 2));
  // Scheduler that halts with probability 1/2 at every step.
  class Halting : public Scheduler {
   public:
    ActionChoice choose(Psioa& a, const ExecFragment& alpha) override {
      ActionChoice c;
      const ActionSet en = a.enabled(alpha.lstate());
      if (!en.empty() && alpha.length() < 2) {
        c.add(en.front(), Rational(1, 2));
      }
      return c;
    }
    std::string name() const override { return "halting"; }
  } sched;
  TraceInsight f;
  const auto dist = exact_fdist(*coin, sched, f, 10);
  EXPECT_EQ(dist.mass(""), Rational(1, 2));            // halted immediately
  EXPECT_EQ(dist.mass("flip_cm_d"), Rational(1, 2));   // halted after flip
  EXPECT_EQ(dist.total(), Rational(1));
}

TEST(ConeMeasure, DepthCapTruncatesDeterministically) {
  auto coin = make_coin("cm_e", Rational(1, 2));
  UniformScheduler sched(100);
  TraceInsight f;
  const auto d1 = exact_fdist(*coin, sched, f, 1);
  EXPECT_EQ(d1.mass("flip_cm_e"), Rational(1));
}

TEST(Sampler, SampleExecutionRespectsScheduler) {
  auto coin = make_coin("cm_f", Rational(1, 2));
  SequenceScheduler sched({act("flip_cm_f"), act("toss_cm_f")});
  Xoshiro256 rng(3);
  const ExecFragment alpha = sample_execution(*coin, sched, rng, 10);
  EXPECT_EQ(alpha.length(), 2u);
  EXPECT_EQ(alpha.actions()[0], act("flip_cm_f"));
}

TEST(Sampler, SerialEstimateConvergesToExact) {
  auto coin = make_coin("cm_g", Rational(1, 4));
  UniformScheduler sched(3);
  TraceInsight f;
  const auto exact = exact_fdist(*coin, sched, f, 10);
  const auto sampled = sample_fdist(*coin, sched, f, 40000, 17, 10);
  EXPECT_TRUE(testing::fdist_matches_exact(exact, sampled, 40000));
}

TEST(Sampler, ParallelEstimateMatchesExactAndIsSeedDeterministic) {
  ThreadPool pool(4);
  TraceInsight f;
  auto make_aut = [] {
    return make_coin("cm_h", Rational(1, 4));
  };
  auto make_sched = [] {
    return std::make_shared<UniformScheduler>(3);
  };
  const auto s1 =
      parallel_sample_fdist(make_aut, make_sched, f, 40000, 99, 10, pool);
  const auto s2 =
      parallel_sample_fdist(make_aut, make_sched, f, 40000, 99, 10, pool);
  EXPECT_EQ(s1.entries().size(), s2.entries().size());
  for (std::size_t i = 0; i < s1.entries().size(); ++i) {
    EXPECT_EQ(s1.entries()[i].first, s2.entries()[i].first);
    EXPECT_DOUBLE_EQ(s1.entries()[i].second, s2.entries()[i].second);
  }
  auto coin = make_aut();
  UniformScheduler sched(3);
  const auto exact = exact_fdist(*coin, sched, f, 10);
  EXPECT_TRUE(testing::fdist_matches_exact(exact, s1, 40000));
}

TEST(Sampler, BernoulliFrequenciesMatchParameter) {
  auto b = make_bernoulli("cm_i", "cm_go_i", "cm_y_i", "cm_n_i",
                          Rational(1, 8));
  UniformScheduler sched(2);
  AcceptInsight f(act("cm_y_i"));
  const auto sampled = sample_fdist(*b, sched, f, 60000, 5, 10);
  EXPECT_NEAR(sampled.mass("1"), 0.125, 0.01);
}

}  // namespace
}  // namespace cdse
