// Renaming and hiding operators (psioa/rename.hpp, psioa/hide.hpp;
// Defs 2.6-2.8 and closure Lemma A.1).

#include <gtest/gtest.h>

#include "psioa/hide.hpp"
#include "psioa/rename.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

TEST(ActionBijection, AppliesAndInverts) {
  ActionBijection g;
  g.add(act("rh_a"), act("rh_a_r"));
  EXPECT_EQ(g.apply(act("rh_a")), act("rh_a_r"));
  EXPECT_EQ(g.invert(act("rh_a_r")), act("rh_a"));
  // Identity outside domain/range.
  EXPECT_EQ(g.apply(act("rh_other")), act("rh_other"));
  EXPECT_EQ(g.invert(act("rh_other")), act("rh_other"));
}

TEST(ActionBijection, RejectsNonInjective) {
  ActionBijection g;
  g.add(act("rh_b"), act("rh_b_r"));
  EXPECT_THROW(g.add(act("rh_b"), act("rh_c_r")), std::logic_error);
  EXPECT_THROW(g.add(act("rh_c"), act("rh_b_r")), std::logic_error);
}

TEST(ActionBijection, WithSuffixBuildsFreshNames) {
  const ActionSet dom = acts({"rh_x", "rh_y"});
  const ActionBijection g = ActionBijection::with_suffix(dom, "#R");
  EXPECT_EQ(g.apply(act("rh_x")), act("rh_x#R"));
  EXPECT_EQ(g.apply(dom), acts({"rh_x#R", "rh_y#R"}));
}

TEST(ActionBijection, InverseSwapsDirections) {
  ActionBijection g;
  g.add(act("rh_d"), act("rh_d_r"));
  const ActionBijection inv = g.inverse();
  EXPECT_EQ(inv.apply(act("rh_d_r")), act("rh_d"));
  EXPECT_EQ(inv.invert(act("rh_d")), act("rh_d_r"));
}

TEST(ActionBijection, SignatureApplication) {
  ActionBijection g;
  g.add(act("rh_in"), act("rh_in_r"));
  Signature sig;
  sig.in = acts({"rh_in"});
  sig.out = acts({"rh_out"});
  const Signature rs = g.apply(sig);
  EXPECT_EQ(rs.in, acts({"rh_in_r"}));
  EXPECT_EQ(rs.out, acts({"rh_out"}));
}

TEST(ActionBijection, ValidForDetectsCollisions) {
  ActionBijection g;
  g.add(act("rh_p"), act("rh_q"));  // maps p onto an existing name q
  Signature sig;
  sig.in = acts({"rh_p"});
  sig.out = acts({"rh_q"});  // q passes through identically -> collision
  EXPECT_FALSE(g.valid_for(sig));
  Signature ok;
  ok.in = acts({"rh_p"});
  EXPECT_TRUE(g.valid_for(ok));
}

TEST(RenamedPsioa, LemmaA1Closure) {
  // r(A) is a PSIOA: signatures valid, transitions defined exactly on the
  // renamed signature, distributions unchanged.
  auto b = make_bernoulli("ren1", "ren_go", "ren_yes", "ren_no",
                          Rational(1, 3));
  ActionBijection g;
  g.add(act("ren_go"), act("ren_go_r"));
  g.add(act("ren_yes"), act("ren_yes_r"));
  auto r = rename_actions(b, g);
  EXPECT_EQ(r->start_state(), b->start_state());
  const Signature rs = r->signature(r->start_state());
  EXPECT_TRUE(rs.valid());
  EXPECT_EQ(rs.in, acts({"ren_go_r"}));
  const StateDist d = r->transition(r->start_state(), act("ren_go_r"));
  EXPECT_EQ(d, b->transition(b->start_state(), act("ren_go")));
  // Non-renamed action keeps its name downstream.
  State yes_state = 0;
  for (State s : d.support()) {
    if (b->state_label(s) == "yes") yes_state = s;
  }
  EXPECT_EQ(r->signature(yes_state).out, acts({"ren_yes_r"}));
}

TEST(RenamedPsioa, TransitionOnOldNameThrows) {
  auto b = make_bernoulli("ren2", "ren2_go", "ren2_yes", "ren2_no",
                          Rational(1, 2));
  ActionBijection g;
  g.add(act("ren2_go"), act("ren2_go_r"));
  auto r = rename_actions(b, g);
  EXPECT_THROW(r->transition(r->start_state(), act("ren2_go")),
               std::logic_error);
}

TEST(HiddenPsioa, ConstantHidingInternalizesOutputs) {
  auto b = make_bernoulli("hid1", "hid_go", "hid_yes", "hid_no",
                          Rational(1, 2));
  auto h = hide_actions(b, acts({"hid_yes"}));
  const State q0 = h->start_state();
  // Move to the probabilistic branch.
  const StateDist d = h->transition(q0, act("hid_go"));
  for (State s : d.support()) {
    const Signature sig = h->signature(s);
    if (b->state_label(s) == "yes") {
      EXPECT_TRUE(sig.is_internal(act("hid_yes")));
      EXPECT_FALSE(sig.is_output(act("hid_yes")));
    }
    EXPECT_TRUE(sig.valid());
  }
}

TEST(HiddenPsioa, HidingIgnoresInputs) {
  auto b = make_bernoulli("hid2", "hid2_go", "hid2_yes", "hid2_no",
                          Rational(1, 2));
  auto h = hide_actions(b, acts({"hid2_go"}));
  // hid2_go is an input; Def 2.7 only hides outputs.
  EXPECT_TRUE(h->signature(h->start_state()).is_input(act("hid2_go")));
}

TEST(HiddenPsioa, StateDependentHiding) {
  auto b = make_bernoulli("hid3", "hid3_go", "hid3_yes", "hid3_no",
                          Rational(1, 2));
  // Hide the yes-report only in the "yes" state.
  PsioaPtr base = b;
  auto h = std::make_shared<HiddenPsioa>(base, [b](State q) {
    return b->state_label(q) == "yes" ? acts({"hid3_yes"}) : ActionSet{};
  });
  const StateDist d = h->transition(h->start_state(), act("hid3_go"));
  for (State s : d.support()) {
    if (b->state_label(s) == "yes") {
      EXPECT_EQ(h->hidden_at(s), acts({"hid3_yes"}));
    } else {
      EXPECT_TRUE(h->hidden_at(s).empty());
    }
  }
}

TEST(HiddenPsioa, DynamicsUnchanged) {
  auto b = make_bernoulli("hid4", "hid4_go", "hid4_yes", "hid4_no",
                          Rational(1, 4));
  auto h = hide_actions(b, acts({"hid4_yes", "hid4_no"}));
  EXPECT_EQ(h->transition(h->start_state(), act("hid4_go")),
            b->transition(b->start_state(), act("hid4_go")));
  EXPECT_EQ(h->encode_state(h->start_state()),
            b->encode_state(b->start_state()));
}

TEST(Operators, HideAfterRenameComposes) {
  auto b = make_bernoulli("hr1", "hr_go", "hr_yes", "hr_no", Rational(1, 2));
  ActionBijection g;
  g.add(act("hr_yes"), act("hr_yes_r"));
  auto hr = hide_actions(rename_actions(b, g), acts({"hr_yes_r"}));
  const StateDist d = hr->transition(hr->start_state(), act("hr_go"));
  for (State s : d.support()) {
    if (b->state_label(s) == "yes") {
      EXPECT_TRUE(hr->signature(s).is_internal(act("hr_yes_r")));
    }
  }
}

}  // namespace
}  // namespace cdse
