// xoshiro256** scalar and block generators (util/rng.hpp): stream
// derivation, the debiased bounded draw (Lemire multiply-shift with
// rejection), and the XoshiroBlock contracts the batched sampler's block
// kernel is built on -- lane j IS scalar stream j, round-robin
// interleave, fill-granularity independence, deterministic rejection
// schedule, and bit-identical scalar/AVX2 dispatch paths.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stat_util.hpp"

namespace cdse {
namespace {

using cdse::testing::chi_square_gof_counts;
using cdse::testing::kStatAlpha;

/// RAII reset so a test forcing an ISA cannot leak it into later tests.
struct IsaGuard {
  ~IsaGuard() { set_block_isa(BlockIsa::kAuto); }
};

bool avx2_available() {
  const IsaGuard guard;
  set_block_isa(BlockIsa::kAvx2);
  // resolve_isa degrades a forced kAvx2 to kScalar off-AVX2 hardware.
  return resolved_block_isa() == BlockIsa::kAvx2;
}

TEST(Xoshiro, StreamsAreDeterministicAndDistinct) {
  Xoshiro256 a = Xoshiro256::for_stream(42, 0);
  Xoshiro256 a2 = Xoshiro256::for_stream(42, 0);
  Xoshiro256 b = Xoshiro256::for_stream(42, 1);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a();
    EXPECT_EQ(va, a2());
    any_diff = any_diff || (va != b());
  }
  EXPECT_TRUE(any_diff);
}

TEST(XoshiroBelow, StaysInRange) {
  Xoshiro256 rng(7);
  for (const std::uint64_t n : {1ULL, 2ULL, 3ULL, 48ULL, 1000003ULL}) {
    for (int i = 0; i < 256; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(XoshiroBelow, SmallBoundIsUniformChiSquare) {
  // 48 slots is the widest scheduler row the stack zoo produces; 20000
  // draws give every cell expectation ~416.
  constexpr std::uint64_t kBound = 48;
  constexpr std::size_t kTrials = 20000;
  Xoshiro256 rng(0xfeedULL);
  std::vector<double> counts(kBound, 0.0);
  for (std::size_t i = 0; i < kTrials; ++i) ++counts[rng.below(kBound)];
  std::vector<std::pair<double, double>> cells;
  for (double c : counts) cells.emplace_back(1.0 / kBound, c);
  const auto r = chi_square_gof_counts(cells, kTrials, 0.0);
  EXPECT_GT(r.pvalue, kStatAlpha) << "stat=" << r.stat;
}

TEST(XoshiroBelow, WorstCaseBoundIsUniformChiSquare) {
  // n = 2^63 + 1 maximizes the rejection window (2^64 mod n = n - 2, so
  // ~half of all raw words are rejected) -- the adversarial case the
  // Lemire rejection step exists for. Without the rejection step the
  // multiply-shift maps two raw words onto every even output and one
  // onto every odd output, a bias this bucketed chi-square detects with
  // overwhelming power... at the bucket level: bucket draws by their
  // top 5 bits, 32 cells of probability 2^58 / (2^63 + 1) each.
  constexpr std::uint64_t kBound = (1ULL << 63) + 1;
  constexpr std::size_t kTrials = 20000;
  Xoshiro256 rng(0xabcdULL);
  std::vector<double> counts(32, 0.0);
  for (std::size_t i = 0; i < kTrials; ++i) {
    const std::uint64_t v = rng.below(kBound);
    ASSERT_LT(v, kBound);
    counts[std::min<std::uint64_t>(v >> 58, 31)] += 1.0;
  }
  const double p = static_cast<double>(1ULL << 58) / 9.223372036854775809e18;
  std::vector<std::pair<double, double>> cells;
  for (double c : counts) cells.emplace_back(p, c);
  const auto r = chi_square_gof_counts(cells, kTrials, 0.0);
  EXPECT_GT(r.pvalue, kStatAlpha) << "stat=" << r.stat;
}

TEST(XoshiroBelow, MatchesReferenceRejectionSchedule) {
  // Pins the algorithm, not just the distribution: multiply-shift on
  // each raw word, re-draw while the product's low half lands under
  // 2^64 mod n.
  constexpr std::uint64_t kBound = (1ULL << 62) + 12345;  // ~25% rejection
  Xoshiro256 rng(99);
  Xoshiro256 raw(99);
  const std::uint64_t thresh = (0 - kBound) % kBound;
  for (int i = 0; i < 512; ++i) {
    unsigned __int128 m;
    std::uint64_t lo;
    do {
      m = static_cast<unsigned __int128>(raw()) * kBound;
      lo = static_cast<std::uint64_t>(m);
    } while (lo < thresh);
    EXPECT_EQ(rng.below(kBound), static_cast<std::uint64_t>(m >> 64));
  }
}

TEST(XoshiroBlock, LaneJIsScalarStreamJ) {
  // The pinned derivation contract: the interleaved block sequence is
  // the round-robin merge of the kLanes scalar streams of the same seed.
  constexpr std::uint64_t kSeed = 0x5eedULL;
  XoshiroBlock blk(kSeed);
  std::vector<Xoshiro256> lanes;
  for (std::uint64_t j = 0; j < XoshiroBlock::kLanes; ++j) {
    lanes.push_back(Xoshiro256::for_stream(kSeed, j));
  }
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(blk.next_raw(), lanes[i % XoshiroBlock::kLanes]())
        << "position " << i;
  }
}

TEST(XoshiroBlock, OutputIndependentOfFillGranularity) {
  XoshiroBlock a(123);
  XoshiroBlock b(123);
  std::vector<std::uint64_t> one(1000);
  a.fill_raw(one.data(), one.size());
  // Ragged fills: sizes 1, 2, 3, ... never aligned to kLanes.
  std::vector<std::uint64_t> ragged;
  std::size_t step = 1;
  while (ragged.size() < one.size()) {
    const std::size_t m = std::min(step, one.size() - ragged.size());
    std::vector<std::uint64_t> piece(m);
    b.fill_raw(piece.data(), m);
    ragged.insert(ragged.end(), piece.begin(), piece.end());
    ++step;
  }
  EXPECT_EQ(one, ragged);
}

TEST(XoshiroBlock, FillUniformMatchesScalarMapping) {
  XoshiroBlock a(9);
  XoshiroBlock b(9);
  std::vector<std::uint64_t> raw(300);
  std::vector<double> u(300);
  a.fill_raw(raw.data(), raw.size());
  b.fill_uniform(u.data(), u.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(u[i], static_cast<double>(raw[i] >> 11) * 0x1.0p-53);
    EXPECT_GE(u[i], 0.0);
    EXPECT_LT(u[i], 1.0);
  }
}

TEST(XoshiroBlock, FillBelowStaysInRangeAndReportsRejections) {
  XoshiroBlock blk(17);
  // bound = 3 * 2^30 + 1: 2^32 mod bound ~ 2^30, so ~25% of candidates
  // reject -- the counter must see plenty of re-draws.
  constexpr std::uint32_t kBound = 3u * (1u << 30) + 1u;
  std::vector<std::uint32_t> out(4096);
  const std::size_t rejects = blk.fill_below(out.data(), out.size(), kBound);
  for (std::uint32_t v : out) EXPECT_LT(v, kBound);
  EXPECT_GT(rejects, 0u);
  EXPECT_THROW(blk.fill_below(out.data(), 1, 0), std::invalid_argument);
}

TEST(XoshiroBlock, FillBelowMatchesReferenceSchedule) {
  // Reference for one chunk (n <= 512): candidates are the high halves
  // of the first n raw words multiply-shifted; rejected positions are
  // then fixed up in ascending order from the words after the chunk.
  constexpr std::uint32_t kBound = 3u * (1u << 30) + 1u;
  constexpr std::size_t kN = 300;
  XoshiroBlock blk(31);
  XoshiroBlock ref(31);
  std::vector<std::uint32_t> out(kN);
  blk.fill_below(out.data(), kN, kBound);

  std::vector<std::uint64_t> raw(kN);
  ref.fill_raw(raw.data(), kN);
  const auto thresh =
      static_cast<std::uint32_t>((std::uint64_t{1} << 32) % kBound);
  std::vector<std::uint32_t> want(kN);
  std::vector<bool> rejected(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const std::uint64_t p = (raw[i] >> 32) * std::uint64_t{kBound};
    want[i] = static_cast<std::uint32_t>(p >> 32);
    rejected[i] = static_cast<std::uint32_t>(p) < thresh;
  }
  for (std::size_t i = 0; i < kN; ++i) {
    if (!rejected[i]) continue;
    std::uint64_t p;
    do {
      p = (ref.next_raw() >> 32) * std::uint64_t{kBound};
    } while (static_cast<std::uint32_t>(p) < thresh);
    want[i] = static_cast<std::uint32_t>(p >> 32);
  }
  EXPECT_EQ(out, want);
}

TEST(XoshiroBlock, FillBelowIsUniformChiSquare) {
  constexpr std::uint32_t kBound = 48;
  constexpr std::size_t kTrials = 20000;
  XoshiroBlock blk(0xb10cULL);
  std::vector<std::uint32_t> out(kTrials);
  blk.fill_below(out.data(), kTrials, kBound);
  std::vector<double> counts(kBound, 0.0);
  for (std::uint32_t v : out) ++counts[v];
  std::vector<std::pair<double, double>> cells;
  for (double c : counts) cells.emplace_back(1.0 / kBound, c);
  const auto r = chi_square_gof_counts(cells, kTrials, 0.0);
  EXPECT_GT(r.pvalue, kStatAlpha) << "stat=" << r.stat;
}

TEST(XoshiroBlock, ScalarAndAvx2PathsAreBitIdentical) {
  if (!avx2_available()) {
    GTEST_SKIP() << "CPU lacks AVX2; single-path build";
  }
  const IsaGuard guard;
  constexpr std::size_t kN = 1337;  // ragged on purpose
  constexpr std::uint32_t kBound = 3u * (1u << 30) + 1u;

  set_block_isa(BlockIsa::kScalar);
  ASSERT_EQ(resolved_block_isa(), BlockIsa::kScalar);
  XoshiroBlock s1(5), s2(5), s3(5);
  std::vector<std::uint64_t> raw_s(kN);
  std::vector<double> uni_s(kN);
  std::vector<std::uint32_t> idx_s(kN);
  s1.fill_raw(raw_s.data(), kN);
  s2.fill_uniform(uni_s.data(), kN);
  const std::size_t rej_s = s3.fill_below(idx_s.data(), kN, kBound);

  set_block_isa(BlockIsa::kAvx2);
  ASSERT_EQ(resolved_block_isa(), BlockIsa::kAvx2);
  XoshiroBlock v1(5), v2(5), v3(5);
  std::vector<std::uint64_t> raw_v(kN);
  std::vector<double> uni_v(kN);
  std::vector<std::uint32_t> idx_v(kN);
  v1.fill_raw(raw_v.data(), kN);
  v2.fill_uniform(uni_v.data(), kN);
  const std::size_t rej_v = v3.fill_below(idx_v.data(), kN, kBound);

  EXPECT_EQ(raw_s, raw_v);
  EXPECT_EQ(uni_s, uni_v);
  EXPECT_EQ(idx_s, idx_v);
  EXPECT_EQ(rej_s, rej_v);
}

TEST(XoshiroBlock, ForStreamSplitsLikeTheScalarGenerator) {
  XoshiroBlock a = XoshiroBlock::for_stream(42, 3);
  XoshiroBlock a2 = XoshiroBlock::for_stream(42, 3);
  XoshiroBlock b = XoshiroBlock::for_stream(42, 4);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next_raw();
    EXPECT_EQ(va, a2.next_raw());
    any_diff = any_diff || (va != b.next_raw());
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace cdse
