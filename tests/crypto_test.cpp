// The crypto substrate: real/ideal pairs and the weak PRG
// (crypto/pairs.hpp, crypto/prg.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/pairs.hpp"
#include "crypto/prg.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

TEST(WeakPrg, RejectsOutOfRangeK) {
  EXPECT_THROW(WeakPrg(0), std::invalid_argument);
  EXPECT_THROW(WeakPrg(25), std::invalid_argument);
}

TEST(WeakPrg, ExpandIsDeterministicAndSeedSensitive) {
  WeakPrg prg(8);
  EXPECT_EQ(prg.expand(5), prg.expand(5));
  EXPECT_NE(prg.expand(5), prg.expand(6));
  EXPECT_EQ(prg.seed_count(), 256u);
}

TEST(WeakPrg, BiasWithinBirthdayEnvelope) {
  // A well-mixed k-bit-seed expander has low-bit bias on the order of
  // 2^{-k/2} (binomial fluctuation over 2^k seeds). The closed form used
  // by the automaton pairs (2^-k) is a design envelope, not a property
  // of this mixer; here we check the statistical envelope.
  for (std::uint32_t k : {4u, 8u, 12u, 16u}) {
    const double bias = std::abs(WeakPrg(k).exact_one_bias());
    EXPECT_LE(bias, 2.0 / std::sqrt(static_cast<double>(1ULL << k)))
        << "k=" << k;
  }
}

TEST(WeakPrg, TvFromUniformEnumerates) {
  WeakPrg prg(6);
  const double tv1 = prg.exact_tv_from_uniform(1);
  const double tv8 = prg.exact_tv_from_uniform(8);
  EXPECT_GE(tv1, 0.0);
  EXPECT_LE(tv1, 1.0);
  // More output bits from few seeds: necessarily farther from uniform.
  EXPECT_GE(tv8, tv1 - 1e-12);
  // 2^6 seeds cannot cover 2^8 buckets: TV is at least 1 - 64/256.
  EXPECT_GE(tv8, 0.75 - 1e-12);
  EXPECT_THROW(prg.exact_tv_from_uniform(17), std::invalid_argument);
}

TEST(Pairs, RejectOutOfRangeK) {
  EXPECT_THROW(make_otmac_pair(0, "cr_a"), std::invalid_argument);
  EXPECT_THROW(make_otmac_pair(63, "cr_b"), std::invalid_argument);
}

TEST(Pairs, OtmacStructuredVocabulariesValidate) {
  const RealIdealPair p = make_otmac_pair(4, "cr_c");
  EXPECT_NO_THROW(p.real.validate(8));
  EXPECT_NO_THROW(p.ideal.validate(8));
  EXPECT_EQ(p.exact_advantage, Rational(1, 16));
  EXPECT_EQ(p.real.adv_in_vocab(), acts({"forge_cr_c"}));
}

TEST(Pairs, OtpStructuredVocabulariesValidate) {
  const RealIdealPair p = make_otp_pair(4, "cr_d");
  EXPECT_NO_THROW(p.real.validate(8));
  EXPECT_NO_THROW(p.ideal.validate(8));
  EXPECT_EQ(p.real.adv_out_vocab(),
            acts({"cipher0_cr_d", "cipher1_cr_d"}));
}

TEST(Pairs, CommitmentStructuredVocabulariesValidate) {
  const RealIdealPair p = make_commitment_pair(4, "cr_e");
  EXPECT_NO_THROW(p.real.validate(8));
  EXPECT_NO_THROW(p.ideal.validate(8));
}

TEST(Pairs, OtmacForgeryProbabilityIsClosedForm) {
  const RealIdealPair p = make_otmac_pair(5, "cr_f");
  SequenceScheduler word(
      {act("auth_cr_f"), act("forge_cr_f"), act("forged_cr_f")});
  EXPECT_EQ(exact_action_probability(p.real.automaton(), word,
                                     act("forged_cr_f"), 10),
            Rational(1, 32));
  EXPECT_EQ(exact_action_probability(p.ideal.automaton(), word,
                                     act("forged_cr_f"), 10),
            Rational(0));
}

TEST(Pairs, OtpCipherBiasIsClosedForm) {
  const RealIdealPair p = make_otp_pair(3, "cr_g");
  SequenceScheduler word({act("send0_cr_g"), act("rand_cr_g"),
                          act("cipher1_cr_g")});
  // P[cipher != message] = 1/2 + 2^-3 for the real pad.
  EXPECT_EQ(exact_action_probability(p.real.automaton(), word,
                                     act("cipher1_cr_g"), 10),
            Rational(1, 2) + Rational(1, 8));
  EXPECT_EQ(exact_action_probability(p.ideal.automaton(), word,
                                     act("cipher1_cr_g"), 10),
            Rational(1, 2));
}

TEST(Pairs, CommitmentFlipProbabilityIsClosedForm) {
  const RealIdealPair p = make_commitment_pair(4, "cr_h");
  SequenceScheduler word({act("commit0_cr_h"), act("flipcmd_cr_h"),
                          act("reveal_cr_h"), act("open1_cr_h")});
  EXPECT_EQ(exact_action_probability(p.real.automaton(), word,
                                     act("open1_cr_h"), 10),
            Rational(1, 16));
  EXPECT_EQ(exact_action_probability(p.ideal.automaton(), word,
                                     act("open1_cr_h"), 10),
            Rational(0));
}

TEST(Pairs, PerfectPairHasIdenticalFdists) {
  const RealIdealPair p = make_perfect_otp_pair("cr_i");
  UniformScheduler sched(8, true);
  TraceInsight f;
  // Drive both with a shared-vocabulary environment-free run; the full
  // local uniform run gives identical trace distributions.
  const auto real_dist =
      exact_fdist(p.real.automaton(), sched, f, 12);
  const auto ideal_dist =
      exact_fdist(p.ideal.automaton(), sched, f, 12);
  EXPECT_EQ(balance_distance(real_dist, ideal_dist), Rational(0));
  EXPECT_EQ(p.exact_advantage, Rational(0));
}

TEST(Pairs, AdvantageScalesExactlyWithK) {
  for (std::uint32_t k : {1u, 2u, 6u, 10u, 30u, 62u}) {
    const RealIdealPair p =
        make_otmac_pair(k, "cr_j" + std::to_string(k));
    EXPECT_EQ(p.exact_advantage,
              Rational(1, static_cast<std::int64_t>(1) << k));
  }
}

}  // namespace
}  // namespace cdse
