// RNG, thread pool, statistics, polynomial and negligibility helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "util/interner.hpp"
#include "util/poly.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

TEST(Interner, AssignsDenseIdsAndRoundTrips) {
  Interner in;
  const auto a = in.intern("alpha");
  const auto b = in.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("alpha"), a);
  EXPECT_EQ(in.name(a), "alpha");
  EXPECT_EQ(in.lookup("beta"), b);
  EXPECT_EQ(in.lookup("gamma"), Interner::kInvalid);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Rng, StreamsAreIndependentOfEachOther) {
  Xoshiro256 s0 = Xoshiro256::for_stream(7, 0);
  Xoshiro256 s1 = Xoshiro256::for_stream(7, 1);
  EXPECT_NE(s0(), s1());
  Xoshiro256 s0b = Xoshiro256::for_stream(7, 0);
  EXPECT_EQ(Xoshiro256::for_stream(7, 0)(), s0b());
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  parallel_for_chunks(pool, hits.size(),
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i)
                          hits[i].fetch_add(1);
                      });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(pool, 0,
                      [&](std::size_t, std::size_t, std::size_t) {
                        called = true;
                      });
  EXPECT_FALSE(called);
}

TEST(Stats, RunningStatMatchesClosedForm) {
  RunningStat rs;
  for (double v : {1.0, 2.0, 3.0, 4.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 4u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.5);
  EXPECT_NEAR(rs.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, HoeffdingShrinksWithN) {
  EXPECT_GT(hoeffding_radius(100), hoeffding_radius(10000));
  EXPECT_EQ(hoeffding_radius(0), 1.0);
}

TEST(Stats, FitLineRecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 + 2.0 * x);
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Polynomial, EvalAndDegree) {
  const Polynomial p({1, 2, 3});  // 1 + 2k + 3k^2
  EXPECT_DOUBLE_EQ(p.eval(0), 1.0);
  EXPECT_DOUBLE_EQ(p.eval(2), 17.0);
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, RejectsNegativeCoefficients) {
  EXPECT_THROW(Polynomial({1.0, -2.0}), std::invalid_argument);
}

TEST(Polynomial, ArithmeticAndScaling) {
  const Polynomial p = Polynomial::monomial(2, 1);  // 2k
  const Polynomial q = Polynomial::constant(3);
  EXPECT_DOUBLE_EQ((p + q).eval(5), 13.0);
  EXPECT_DOUBLE_EQ((p * p).eval(3), 36.0);
  EXPECT_DOUBLE_EQ(p.scaled(4).eval(2), 16.0);
}

TEST(Negligible, AcceptsGeometricDecay) {
  std::vector<std::uint32_t> ks{1, 2, 3, 4, 5, 6};
  std::vector<double> eps;
  for (auto k : ks) eps.push_back(std::pow(2.0, -static_cast<double>(k)));
  EXPECT_TRUE(looks_negligible(ks, eps));
}

TEST(Negligible, RejectsInversePolynomialDecay) {
  std::vector<std::uint32_t> ks{4, 8, 16, 32, 64};
  std::vector<double> eps;
  for (auto k : ks) eps.push_back(1.0 / k);
  EXPECT_FALSE(looks_negligible(ks, eps));
}

TEST(Negligible, AcceptsExactZeroTail) {
  std::vector<std::uint32_t> ks{1, 2, 3};
  std::vector<double> eps{0.0, 0.0, 0.0};
  EXPECT_TRUE(looks_negligible(ks, eps));
}

TEST(Negligible, FittedExponentRecoversTwoPowerDecay) {
  std::vector<std::uint32_t> ks{2, 4, 6, 8, 10};
  std::vector<double> eps;
  for (auto k : ks) eps.push_back(std::pow(2.0, -static_cast<double>(k)));
  EXPECT_NEAR(fitted_decay_exponent(ks, eps), 1.0, 1e-9);
}

}  // namespace
}  // namespace cdse
