// Quotient-reduced exact engine (impl/bisim.hpp bisimulation_partition +
// CompiledSnapshot::quotient + ReductionPolicy): unit + differential.
//
// Layers:
//   unit         -- the singleton (identity) partition is a monotone
//                   rename: the quotient replays the original snapshot
//                   draw for draw (same targets modulo rename, the same
//                   cdf doubles). Merged same-signature branches lump;
//                   invalid partitions throw; frontier states stay
//                   singletons.
//   differential -- epsilon on the quotient == epsilon on the original,
//                   EXACTLY (Rational-equal), across the same stack zoo
//                   the exact-engine suite pins (random composed,
//                   hidden+renamed, structured MAC, PCA ledger, faulty
//                   channel, crashable, byzantine), serial and through
//                   ParallelConeEngine at 1/2/4/8 workers.
//   search/grid  -- search_best_word[_parallel],
//                   check_implementation_parallel and the family sweep
//                   under ReductionPolicy::bisimulation() reproduce
//                   their unreduced results bit for bit.
//
// Suite names all start with "Quotient" so scripts/check.sh --tsan can
// select the concurrency-bearing cases by regex.

#include "psioa/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/byzantine.hpp"
#include "fault/crash.hpp"
#include "fault/faulty.hpp"
#include "impl/bisim.hpp"
#include "impl/family_sweep.hpp"
#include "impl/implementation.hpp"
#include "impl/optimal.hpp"
#include "protocols/channel.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/exact_engine.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 4;
const std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------- stack zoo
// Same shapes as the exact-engine differential suite, under fresh "qt_"
// tags so the two suites' action vocabularies stay disjoint.

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

PsioaFactory crashable_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_crashable(make_channel(tag), 3); };
}

PsioaFactory byzantine_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    return std::make_shared<ByzantinePsioa>(
        make_channel(tag),
        make_flip_involution({{act("recv0_" + tag), act("recv1_" + tag)}}),
        Rational(1, 3));
  };
}

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
}

/// A covering snapshot of one fresh instance (horizon = depth, like
/// reduce_for_enumeration's walk).
std::shared_ptr<const CompiledSnapshot> freeze_stack(const PsioaFactory& fa,
                                                     std::size_t depth) {
  PsioaPtr sys = fa();
  auto memo = memoize(sys);
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = depth;
  UniformScheduler uniform(depth);
  warm_automaton(*memo, uniform, plan, depth);
  return memo->freeze();
}

ExactDisc<Perception> reference_fdist(const PsioaFactory& fa) {
  PsioaPtr sys = fa();
  UniformScheduler sched(kDepth);
  TraceInsight f;
  return exact_fdist_recursive(*sys, sched, f, kDepth + 1);
}

// ----------------------------------------------------------------- unit

TEST(QuotientUnit, SingletonPartitionIsMonotoneRename) {
  const auto snap = freeze_stack(composed_factory(2, "qt_id"), kDepth + 1);

  // Identity partition in sorted-handle order: block i = i-th handle.
  std::vector<State> handles;
  for (const auto& [q, fs] : snap->frozen_states()) {
    (void)fs;
    handles.push_back(q);
  }
  std::sort(handles.begin(), handles.end());
  SnapshotPartition part;
  part.blocks = handles.size();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    part.block_of.emplace(handles[i], i);
  }

  const QuotientSnapshot q = snap->quotient(part);
  ASSERT_NE(q.reduced, nullptr);
  EXPECT_EQ(q.blocks, snap->state_count());
  EXPECT_EQ(q.reduced->state_count(), snap->state_count());
  EXPECT_EQ(q.reduced->row_count(), snap->row_count());
  EXPECT_EQ(q.dropped_rows, 0u);
  EXPECT_EQ(q.reduced->start_state(),
            State{part.block_of.at(snap->start_state())});

  // Draw-for-draw identity: every row's targets are the monotone rename
  // of the original's (same entry order), and the cdf doubles -- the
  // sampling surface -- are bit-identical, not just rational-equal.
  for (const auto& [orig, fs] : snap->frozen_states()) {
    const State block = State{part.block_of.at(orig)};
    const auto& rfs = q.reduced->frozen_states().at(block);
    ASSERT_EQ(rfs.sig.has_value(), fs.sig.has_value());
    ASSERT_EQ(rfs.rows.size(), fs.rows.size());
    for (const auto& [a, row] : fs.rows) {
      const CompiledRow* rrow = q.reduced->find_row(block, a);
      ASSERT_NE(rrow, nullptr);
      ASSERT_EQ(rrow->targets.size(), row.targets.size());
      for (std::size_t i = 0; i < row.targets.size(); ++i) {
        EXPECT_EQ(rrow->targets[i],
                  State{part.block_of.at(row.targets[i])});
        EXPECT_EQ(rrow->cdf[i], row.cdf[i]);
        EXPECT_EQ(rrow->dist.entries()[i].second, row.dist.entries()[i].second);
      }
    }
  }
}

TEST(QuotientUnit, MergedBranchesLumpAndWeightsSumExactly) {
  // The split automaton of the bisim suite: two same-signature "yes"
  // targets carrying 1/4 each. The partitioner must lump them into one
  // block and the quotient row must carry their exact 1/2 sum.
  auto split = std::make_shared<ExplicitPsioa>("qt_sp");
  const State s0 = split->add_state("idle");
  const State y1 = split->add_state("yes1");
  const State y2 = split->add_state("yes2");
  const State sn = split->add_state("no");
  const State sd = split->add_state("done");
  split->set_start(s0);
  Signature sig0;
  sig0.in = acts({"qt_go"});
  split->set_signature(s0, sig0);
  Signature sigy;
  sigy.out = acts({"qt_y"});
  split->set_signature(y1, sigy);
  split->set_signature(y2, sigy);
  Signature sign;
  sign.out = acts({"qt_n"});
  split->set_signature(sn, sign);
  split->set_signature(sd, Signature{});
  StateDist d;
  d.add(y1, Rational(1, 4));
  d.add(y2, Rational(1, 4));
  d.add(sn, Rational(1, 2));
  split->add_transition(s0, act("qt_go"), d);
  split->add_step(y1, act("qt_y"), sd);
  split->add_step(y2, act("qt_y"), sd);
  split->add_step(sn, act("qt_n"), sd);
  split->validate();

  const PsioaFactory fa = [split]() -> PsioaPtr { return split; };
  const auto snap = freeze_stack(fa, 8);
  ASSERT_EQ(snap->state_count(), 5u);

  PartitionStats pstats;
  const SnapshotPartition part = bisimulation_partition(*snap, &pstats);
  EXPECT_EQ(pstats.states, 5u);
  EXPECT_EQ(pstats.frontier, 0u);
  EXPECT_EQ(pstats.blocks, 4u);  // {idle} {yes1,yes2} {no} {done}
  EXPECT_EQ(part.block_of.at(y1), part.block_of.at(y2));

  const QuotientSnapshot q = snap->quotient(part);
  const CompiledRow* row =
      q.reduced->find_row(State{part.block_of.at(s0)}, act("qt_go"));
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->targets.size(), 2u);  // yes-block + no-block
  const Rational yes_mass =
      row->dist.mass(State{part.block_of.at(y1)});
  EXPECT_EQ(yes_mass, Rational(1, 2));

  // And the reduced view replays the original's exact f-dist.
  TraceInsight f;
  UniformScheduler s_orig(8);
  const ExactDisc<Perception> want = exact_fdist_recursive(*split, s_orig, f, 8);
  QuotientPsioa view(q.reduced);
  UniformScheduler s_red(8);
  EXPECT_EQ(exact_fdist(view, s_red, f, 8), want);
}

TEST(QuotientUnit, InvalidPartitionsThrow) {
  const auto snap = freeze_stack(faulty_channel_factory("qt_bad"), 4);
  {
    SnapshotPartition missing;  // covers nothing
    missing.blocks = 1;
    EXPECT_THROW((void)snap->quotient(missing), std::invalid_argument);
  }
  {
    SnapshotPartition oob;  // ids out of range
    oob.blocks = 1;
    for (const auto& [q, fs] : snap->frozen_states()) {
      (void)fs;
      oob.block_of.emplace(q, 7);
    }
    EXPECT_THROW((void)snap->quotient(oob), std::invalid_argument);
  }
}

TEST(QuotientUnit, FrontierStatesStaySingletons) {
  // A shallow horizon leaves depth-cut states incompletely frozen; the
  // partitioner must pin every one of them to its own block rather than
  // merging partial knowledge.
  const auto snap = freeze_stack(ledger_factory("qt_fr"), 2);
  PartitionStats pstats;
  (void)bisimulation_partition(*snap, &pstats);
  EXPECT_GT(pstats.frontier, 0u);
  EXPECT_GE(pstats.blocks, pstats.frontier);
}

TEST(QuotientUnit, ReduceForEnumerationFallsBackOnTruncation) {
  ReductionPolicy tiny = ReductionPolicy::bisimulation();
  tiny.max_states = 2;  // the ledger blows past this immediately
  PsioaPtr sys = ledger_factory("qt_tr")();
  EXPECT_FALSE(reduce_for_enumeration(*sys, 6, tiny).has_value());
  PsioaPtr sys2 = ledger_factory("qt_tr2")();
  EXPECT_FALSE(
      reduce_for_enumeration(*sys2, 0, ReductionPolicy::bisimulation())
          .has_value());
  PsioaPtr sys3 = ledger_factory("qt_tr3")();
  EXPECT_FALSE(reduce_for_enumeration(*sys3, 6, ReductionPolicy::none())
                   .has_value());
}

// ---------------------------------------------------------- differential

/// Serial reduced enumeration and ParallelConeEngine under the policy at
/// every worker count must reproduce the recursive reference exactly.
void expect_quotient_agrees(const PsioaFactory& fa) {
  const ExactDisc<Perception> want = reference_fdist(fa);
  TraceInsight f;

  {
    PsioaPtr sys = fa();
    const auto red = reduce_for_enumeration(*sys, kDepth + 1,
                                            ReductionPolicy::bisimulation());
    ASSERT_TRUE(red.has_value());
    EXPECT_GT(red->blocks, 0u);
    EXPECT_LE(red->blocks, red->states);
    UniformScheduler sched(kDepth);
    ConeStats stats;
    EXPECT_EQ(exact_fdist(*red->view, sched, f, kDepth + 1, &stats), want);
  }

  ParallelConeEngine engine(fa, uniform_factory(kDepth),
                            ReductionPolicy::bisimulation());
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = kDepth + 1;
  engine.prepare(plan, kDepth + 1);
  EXPECT_TRUE(engine.reduced());
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    EXPECT_EQ(engine.exact_fdist(f, kDepth + 1, pool), want)
        << "workers=" << workers;
    EXPECT_GT(engine.last_stats().quotient_states, 0u);
    EXPECT_GT(engine.last_stats().quotient_blocks, 0u);
    EXPECT_LE(engine.last_stats().quotient_blocks,
              engine.last_stats().quotient_states);
  }
}

class QuotientDifferential : public ::testing::TestWithParam<int> {};

TEST_P(QuotientDifferential, ComposedStack) {
  const int n = GetParam();
  expect_quotient_agrees(composed_factory(n, "qt_a" + std::to_string(n)));
}

TEST_P(QuotientDifferential, HiddenRenamedStack) {
  const int n = GetParam();
  expect_quotient_agrees(hidden_renamed_factory(n, "qt_b" + std::to_string(n)));
}

INSTANTIATE_TEST_SUITE_P(Random, QuotientDifferential, ::testing::Range(0, 4));

TEST(QuotientStacks, StructuredSecureStack) {
  expect_quotient_agrees(mac_factory("qt_mac"));
}

TEST(QuotientStacks, PcaLedgerStack) {
  expect_quotient_agrees(ledger_factory("qt_led"));
}

TEST(QuotientStacks, FaultyChannelStack) {
  expect_quotient_agrees(faulty_channel_factory("qt_fl"));
}

TEST(QuotientStacks, CrashableStack) {
  expect_quotient_agrees(crashable_factory("qt_cr"));
}

TEST(QuotientStacks, ByzantineStack) {
  expect_quotient_agrees(byzantine_factory("qt_bz"));
}

TEST(QuotientStacks, SelfEpsilonIsZeroThroughThePolicy) {
  // A ~ A: the policy overload must report exactly zero between two
  // fresh instances of the same stack, with quotient counters filled.
  for (const PsioaFactory& fa :
       {mac_factory("qt_self"), faulty_channel_factory("qt_self2")}) {
    PsioaPtr a = fa();
    PsioaPtr b = fa();
    UniformScheduler sa(kDepth);
    UniformScheduler sb(kDepth);
    TraceInsight f;
    ConeStats stats;
    EXPECT_EQ(exact_balance_epsilon(*a, sa, *b, sb, f, kDepth + 1,
                                    ReductionPolicy::bisimulation(), &stats),
              Rational(0));
    EXPECT_GT(stats.quotient_blocks, 0u);
  }
}

TEST(QuotientStacks, PolicyEpsilonEqualsUnreducedEpsilon) {
  // The correctness contract, head on: epsilon through the policy ==
  // epsilon without it, Rational-equal, for a distinguishable pair.
  const std::string tag = "qt_eps";
  const RealIdealPair pair = make_otmac_pair(2, tag);
  auto env_factory = [tag]() -> PsioaPtr {
    return make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
  };
  auto adv_factory = [tag]() -> PsioaPtr {
    return make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
  };
  auto lhs = compose(env_factory(), compose(pair.real.ptr(), adv_factory()));
  auto rhs = compose(env_factory(), compose(pair.ideal.ptr(), adv_factory()));
  TraceInsight f;
  UniformScheduler s1(6);
  UniformScheduler s2(6);
  const Rational plain = exact_balance_epsilon(*lhs, s1, *rhs, s2, f, 6);
  auto lhs2 = compose(env_factory(), compose(pair.real.ptr(), adv_factory()));
  auto rhs2 = compose(env_factory(), compose(pair.ideal.ptr(), adv_factory()));
  UniformScheduler s3(6);
  UniformScheduler s4(6);
  EXPECT_EQ(exact_balance_epsilon(*lhs2, s3, *rhs2, s4, f, 6,
                                  ReductionPolicy::bisimulation()),
            plain);
}

// ------------------------------------------------------------ search/grid

TEST(QuotientSearch, PolicyPreservesWordEpsilonAndCount) {
  const PsioaFactory make_lhs = []() -> PsioaPtr {
    const RealIdealPair pair = make_otmac_pair(2, "qt_s");
    auto adv = make_sink_adversary("qt_s_adv", {}, acts({"forge_qt_s"}));
    return hidden_adversary_composition(pair.real, adv);
  };
  const PsioaFactory make_rhs = []() -> PsioaPtr {
    const RealIdealPair pair = make_otmac_pair(2, "qt_s");
    auto adv = make_sink_adversary("qt_s_adv", {}, acts({"forge_qt_s"}));
    return hidden_adversary_composition(pair.ideal, adv);
  };
  const std::vector<ActionId> alphabet{
      act("auth_qt_s"), act("forge_qt_s"), act("forged_qt_s"),
      act("rejected_qt_s")};
  TraceInsight f;

  PsioaPtr l1 = make_lhs();
  PsioaPtr r1 = make_rhs();
  const BestDistinguisher plain = search_best_word(*l1, *r1, alphabet, 4, f, 10);

  PsioaPtr l2 = make_lhs();
  PsioaPtr r2 = make_rhs();
  const BestDistinguisher red = search_best_word(
      *l2, *r2, alphabet, 4, f, 10, ReductionPolicy::bisimulation());
  EXPECT_EQ(red.word, plain.word);
  EXPECT_EQ(red.eps, plain.eps);
  EXPECT_EQ(red.words_evaluated, plain.words_evaluated);
  EXPECT_GT(red.stats.quotient_blocks, 0u);
  EXPECT_LE(red.stats.quotient_blocks, red.stats.quotient_states);

  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    const BestDistinguisher par = search_best_word_parallel(
        make_lhs, make_rhs, alphabet, 4, f, 10, pool, /*frontier_target=*/0,
        ReductionPolicy::bisimulation());
    EXPECT_EQ(par.word, plain.word) << "workers=" << workers;
    EXPECT_EQ(par.eps, plain.eps) << "workers=" << workers;
    EXPECT_EQ(par.words_evaluated, plain.words_evaluated)
        << "workers=" << workers;
    EXPECT_GT(par.stats.quotient_blocks, 0u) << "workers=" << workers;
  }
}

TEST(QuotientGrid, ImplementationCheckMatchesUnreduced) {
  const std::string tag = "qt_g";
  const PsioaFactory make_a = [tag]() -> PsioaPtr {
    return make_otmac_pair(2, tag).real.ptr();
  };
  const PsioaFactory make_b = [tag]() -> PsioaPtr {
    return make_otmac_pair(2, tag).ideal.ptr();
  };
  auto make_env = [tag]() -> PsioaPtr {
    return make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
  };
  auto make_word = [tag]() -> SchedulerPtr {
    return std::make_shared<SequenceScheduler>(
        std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                              act("forged_" + tag), act("acc_" + tag)},
        /*local_only=*/true);
  };
  auto make_uniform = []() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;

  const std::vector<LabeledPsioa> envs{{"probe", make_env()}};
  const std::vector<LabeledScheduler> scheds{{"word", make_word()},
                                             {"uniform", make_uniform()}};
  const ImplementationReport serial = check_implementation(
      make_a(), make_b(), envs, scheds, same_scheduler(), f, 8);

  const std::vector<LabeledPsioaFactory> fenvs{{"probe", make_env}};
  const std::vector<LabeledSchedulerFactory> fscheds{{"word", make_word},
                                                     {"uniform", make_uniform}};
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    const ImplementationReport par = check_implementation_parallel(
        make_a, make_b, fenvs, fscheds, same_scheduler(), f, 8, pool,
        ReductionPolicy::bisimulation());
    ASSERT_EQ(par.rows.size(), serial.rows.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
      EXPECT_EQ(par.rows[i].env, serial.rows[i].env);
      EXPECT_EQ(par.rows[i].sched, serial.rows[i].sched);
      EXPECT_EQ(par.rows[i].eps, serial.rows[i].eps)
          << "workers=" << workers << " row " << i;
    }
    EXPECT_EQ(par.max_eps, serial.max_eps) << "workers=" << workers;
  }
}

TEST(QuotientGrid, FamilySweepMatchesUnreduced) {
  const std::string base = "qt_fs";
  PsioaFamily real{
      "real", [base](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair = make_otmac_pair(k, tag);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
            act("forged_" + tag), act("acc_" + tag));
        auto adv =
            make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
        return compose(env, compose(pair.real.ptr(), adv));
      }};
  PsioaFamily ideal = real;
  ideal.name = "ideal";
  ideal.make = [base](std::uint32_t k) -> PsioaPtr {
    const std::string tag = base + std::to_string(k);
    const RealIdealPair pair = make_otmac_pair(k, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
    return compose(env, compose(pair.ideal.ptr(), adv));
  };
  SchedulerFamily word{
      "word", [base](std::uint32_t k) -> SchedulerPtr {
        const std::string tag = base + std::to_string(k);
        return std::make_shared<SequenceScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                  act("forged_" + tag), act("acc_" + tag)},
            /*local_only=*/true);
      }};
  const std::vector<std::uint32_t> ks{1, 2, 3, 4};

  auto sweep = [&](const ReductionPolicy& policy) {
    ThreadPool pool(4);
    return family_epsilon_sweep(real, ideal, word, TraceInsight(), ks, 12,
                                /*exact_upto=*/4, /*trials=*/0, /*seed=*/1,
                                pool, policy);
  };
  const FamilySweepReport plain = sweep(ReductionPolicy::none());
  const FamilySweepReport red = sweep(ReductionPolicy::bisimulation());
  ASSERT_EQ(red.rows.size(), plain.rows.size());
  for (std::size_t i = 0; i < plain.rows.size(); ++i) {
    ASSERT_TRUE(red.rows[i].exact.has_value());
    ASSERT_TRUE(plain.rows[i].exact.has_value());
    EXPECT_EQ(*red.rows[i].exact, *plain.rows[i].exact) << "k=" << ks[i];
    // The sweep's exact cells carry the closed-form MAC advantage.
    EXPECT_EQ(*red.rows[i].exact,
              Rational(1, static_cast<std::int64_t>(1) << ks[i]));
  }
  EXPECT_EQ(red.negligible_looking, plain.negligible_looking);
}

}  // namespace
}  // namespace cdse
