// Dummy adversary and the Forward constructions
// (secure/dummy.hpp, secure/forward.hpp; Def 4.27, Lemma 4.29 / D.1).

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "impl/balance.hpp"
#include "secure/adversary.hpp"
#include "secure/forward.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

TEST(DummyAdversary, StartsIdleWithInputOnlySignature) {
  const RealIdealPair otp = make_otp_pair(2, "df_a");
  const ActionBijection g =
      ActionBijection::with_suffix(otp.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(otp.real, g);
  const State q0 = dummy->start_state();
  const Signature sig = dummy->signature(q0);
  EXPECT_EQ(sig.in, acts({"cipher0_df_a", "cipher1_df_a"}));
  EXPECT_TRUE(sig.out.empty());
  EXPECT_TRUE(sig.internal.empty());
  EXPECT_EQ(dummy->state_label(q0), "idle");
}

TEST(DummyAdversary, ForwardsLeakRenamed) {
  const RealIdealPair otp = make_otp_pair(2, "df_b");
  const ActionBijection g =
      ActionBijection::with_suffix(otp.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(otp.real, g);
  const State q0 = dummy->start_state();
  // Receive the leak cipher0: pending := cipher0.
  const State q1 =
      dummy->transition(q0, act("cipher0_df_b")).support()[0];
  const Signature sig = dummy->signature(q1);
  EXPECT_EQ(sig.out, acts({"cipher0_df_b#r"}));
  // Forward: back to idle.
  const State q2 =
      dummy->transition(q1, act("cipher0_df_b#r")).support()[0];
  EXPECT_EQ(q2, q0);
}

TEST(DummyAdversary, ForwardsCommandUnrenamed) {
  const RealIdealPair mac = make_otmac_pair(2, "df_c");
  const ActionBijection g =
      ActionBijection::with_suffix(mac.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(mac.real, g);
  const State q0 = dummy->start_state();
  EXPECT_EQ(dummy->signature(q0).in, acts({"forge_df_c#r"}));
  const State q1 =
      dummy->transition(q0, act("forge_df_c#r")).support()[0];
  EXPECT_EQ(dummy->signature(q1).out, acts({"forge_df_c"}));
  EXPECT_EQ(dummy->transition(q1, act("forge_df_c")).support()[0], q0);
}

TEST(DummyAdversary, PendingOverwriteKeepsLatest) {
  const RealIdealPair otp = make_otp_pair(2, "df_d");
  const ActionBijection g =
      ActionBijection::with_suffix(otp.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(otp.real, g);
  State q = dummy->start_state();
  q = dummy->transition(q, act("cipher0_df_d")).support()[0];
  q = dummy->transition(q, act("cipher1_df_d")).support()[0];
  EXPECT_EQ(dummy->signature(q).out, acts({"cipher1_df_d#r"}));
}

TEST(DummyAdversary, RejectsNonEnabledAction) {
  const RealIdealPair otp = make_otp_pair(2, "df_e");
  const ActionBijection g =
      ActionBijection::with_suffix(otp.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(otp.real, g);
  EXPECT_THROW(dummy->transition(dummy->start_state(),
                                 act("cipher0_df_e#r")),
               std::logic_error);
}

/// Builds the OTP insertion scenario: env sends 0, a renamed relay tells
/// the env what ciphertext it saw.
struct OtpScenario {
  RealIdealPair pair;
  PsioaPtr env;
  PsioaPtr adv;
  std::unique_ptr<DummyInsertion> ins;

  explicit OtpScenario(const std::string& tag)
      : pair(make_otp_pair(2, tag)) {
    env = make_probe_env_matching(
        "env_" + tag, {act("send0_" + tag)},
        acts({"tell0_" + tag}), act("tell1_" + tag), act("acc_" + tag));
    adv = make_relay_adversary(
        "relay_" + tag,
        {{act("cipher0_" + tag + "#r"), act("tell0_" + tag)},
         {act("cipher1_" + tag + "#r"), act("tell1_" + tag)}});
    ins = std::make_unique<DummyInsertion>(pair.real, env, adv, "#r");
  }
};

TEST(DummyInsertion, ClassifiersAgreeWithPaper) {
  OtpScenario sc("df_f");
  const ActionId cipher0 = act("cipher0_df_f");
  const ActionId cipher0r = act("cipher0_df_f#r");
  EXPECT_TRUE(sc.ins->is_first_half(cipher0));
  EXPECT_FALSE(sc.ins->is_first_half(cipher0r));
  EXPECT_EQ(sc.ins->forward_of(cipher0), cipher0r);
  EXPECT_EQ(sc.ins->left_action_of(cipher0), cipher0r);
  EXPECT_EQ(sc.ins->origin_of(cipher0r), cipher0);
  EXPECT_TRUE(sc.ins->is_left_shared(cipher0r));
  EXPECT_FALSE(sc.ins->is_left_shared(act("send0_df_f")));
}

TEST(DummyInsertion, LemmaD1EpsilonIsExactlyZero) {
  OtpScenario sc("df_g");
  auto sigma = std::make_shared<UniformScheduler>(8, /*local_only=*/true);
  const SchedulerPtr sigma2 = sc.ins->forward_scheduler(sigma);
  TraceInsight f;
  const Rational eps = exact_balance_epsilon(
      sc.ins->left(), *sigma, sc.ins->right(), *sigma2, f, 20);
  EXPECT_EQ(eps, Rational(0));
  // Accept-style perception is also preserved (the bravery conditions).
  AcceptInsight fa(act("acc_df_g"));
  EXPECT_EQ(exact_balance_epsilon(sc.ins->left(), *sigma, sc.ins->right(),
                                  *sigma2, fa, 20),
            Rational(0));
}

TEST(DummyInsertion, LemmaD1CommandDirectionEpsilonZero) {
  // MAC flavor: the adversary *sends* commands through the dummy.
  const std::string tag = "df_h";
  const RealIdealPair mac = make_otmac_pair(2, tag);
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  const PsioaPtr adv =
      make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag + "#r"}));
  DummyInsertion ins(mac.real, env, adv, "#r");
  auto sigma = std::make_shared<UniformScheduler>(8, true);
  const SchedulerPtr sigma2 = ins.forward_scheduler(sigma);
  TraceInsight f;
  EXPECT_EQ(exact_balance_epsilon(ins.left(), *sigma, ins.right(), *sigma2,
                                  f, 20),
            Rational(0));
}

TEST(DummyInsertion, ScheduleLengthAtMostDoubles) {
  OtpScenario sc("df_i");
  auto sigma = std::make_shared<UniformScheduler>(6, true);
  const SchedulerPtr sigma2 = sc.ins->forward_scheduler(sigma);
  const std::size_t q1 = max_schedule_length(sc.ins->left(), *sigma, 30);
  const std::size_t q2 = max_schedule_length(sc.ins->right(), *sigma2, 30);
  EXPECT_LE(q2, 2 * q1);
  EXPECT_GE(q2, q1);  // forwards only add steps
}

TEST(DummyInsertion, LeftFragmentCollapsesForwardPairs) {
  OtpScenario sc("df_j");
  auto sigma = std::make_shared<UniformScheduler>(8, true);
  const SchedulerPtr sigma2 = sc.ins->forward_scheduler(sigma);
  // Every halted right execution maps to a left execution.
  std::size_t mapped = 0;
  for_each_halted_execution(
      sc.ins->right(), *sigma2, 20,
      [&](const ExecFragment& alpha, const Rational& p) {
        (void)p;
        const ExecFragment left = sc.ins->left_fragment_of(alpha);
        EXPECT_TRUE(is_execution(sc.ins->left(), left))
            << alpha.to_string(sc.ins->right());
        EXPECT_LE(left.length(), alpha.length());
        ++mapped;
      });
  EXPECT_GT(mapped, 0u);
}

TEST(DummyInsertion, LeftFragmentRejectsBrokenForward) {
  OtpScenario sc("df_k");
  // A fragment ending mid-forward is rejected.
  ComposedPsioa& right = sc.ins->right();
  ExecFragment alpha(right.start_state());
  // Drive: env outputs send0 (shared with A inside H).
  const StateDist d0 = right.transition(right.start_state(),
                                        act("send0_df_k"));
  alpha.append(act("send0_df_k"), d0.support()[0]);
  // A resolves internally.
  const ActionId rand_a = act("rand_df_k");
  const StateDist d1 = right.transition(alpha.lstate(), rand_a);
  alpha.append(rand_a, d1.support()[0]);
  // Fire the leak (first half) and stop.
  const Signature sig = right.signature(alpha.lstate());
  ActionId leak = kInvalidAction;
  for (ActionId a : sig.all()) {
    if (sc.ins->is_first_half(a)) leak = a;
  }
  ASSERT_NE(leak, kInvalidAction);
  alpha.append(leak, right.transition(alpha.lstate(), leak).support()[0]);
  EXPECT_THROW(sc.ins->left_fragment_of(alpha), std::logic_error);
}

TEST(DummyInsertion, ForwardSchedulerConservesMass) {
  // sigma' mirrors sigma exactly: the right-side cone measure must be a
  // probability measure (no mass lost to unmatched forwards).
  OtpScenario sc("df_m");
  auto sigma = std::make_shared<UniformScheduler>(7, true);
  const SchedulerPtr sigma2 = sc.ins->forward_scheduler(sigma);
  Rational total;
  for_each_halted_execution(sc.ins->right(), *sigma2, 24,
                            [&](const ExecFragment&, const Rational& p) {
                              total += p;
                            });
  EXPECT_EQ(total, Rational(1));
}

TEST(DummyInsertion, ForwardMirrorsWordSchedulersToo) {
  // Lemma D.1's construction is scheduler-agnostic: mirror an off-line
  // word scheduler and get epsilon zero as well.
  OtpScenario sc("df_n");
  const std::string tag = "df_n";
  auto sigma = std::make_shared<SequenceScheduler>(
      std::vector<ActionId>{act("send0_" + tag), act("rand_" + tag),
                            act("cipher1_" + tag + "#r"),
                            act("tell1_" + tag), act("acc_" + tag)},
      true);
  const SchedulerPtr sigma2 = sc.ins->forward_scheduler(sigma);
  AcceptInsight f(act("acc_" + tag));
  EXPECT_EQ(exact_balance_epsilon(sc.ins->left(), *sigma, sc.ins->right(),
                                  *sigma2, f, 24),
            Rational(0));
  // And the accept probability itself is the cipher-flip probability of
  // the biased pad: 1/2 + 2^-2.
  const auto dist = exact_fdist(sc.ins->left(), *sigma, f, 24);
  EXPECT_EQ(dist.mass("1"), Rational(1, 2) + Rational(1, 4));
}

TEST(DummyInsertion, DummyIsAdversaryForA) {
  // Sanity: Dummy(A, g) itself satisfies Def 4.24 for A.
  const RealIdealPair otp = make_otp_pair(2, "df_l");
  const ActionBijection g =
      ActionBijection::with_suffix(otp.real.aact_vocab(), "#r");
  const PsioaPtr dummy = make_dummy_adversary(otp.real, g);
  EXPECT_TRUE(check_adversary_for(otp.real, dummy, 8).ok);
}

}  // namespace
}  // namespace cdse
