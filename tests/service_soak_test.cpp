// Session GC at the PCA and service layers, and the soak driver's
// robustness contract (src/service).
//
// The load-bearing property is the GC differential: retiring
// dead-session state (DynamicPca::retire_states_of, service
// close+advance_epoch) must never perturb live sessions -- signatures,
// exact f-dists, and draw-for-draw compiled-row samples stay identical
// to a control instance that never collected, and the soak report's
// outcome digest is invariant under GC on/off, worker count, and
// compaction schedule.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "crypto/service.hpp"
#include "service/soak.hpp"

namespace cdse {
namespace {

// -- DynamicPca session GC ---------------------------------------------------

TEST(DynamicPcaGc, DestructionObserverFiresOncePerMemoizedRow) {
  const MacServicePair svc = make_mac_service_pair({1}, "gcob");
  DynamicPca& x = *svc.real_pca;
  std::vector<std::tuple<Aid, State, ActionId>> fired;
  x.set_destruction_observer([&](Aid aid, State from, ActionId a) {
    fired.emplace_back(aid, from, a);
  });

  State q = x.start_state();
  q = x.transition(q, act("open_gcob_0")).support()[0];
  q = x.transition(q, act("auth_gcob_0")).support()[0];
  const StateDist d = x.transition(q, act("forge_gcob_0"));
  EXPECT_TRUE(fired.empty());  // session alive through the whole front half

  // Resolving either outcome destroys the session automaton (empty
  // signature, Def 2.12): the observer reports Aid 1, once per row.
  for (State q2 : d.support()) {
    const Signature sig = x.signature(q2);
    for (ActionId a : sig.out) x.transition(q2, a);
  }
  ASSERT_EQ(fired.size(), 2u);
  for (const auto& [aid, from, a] : fired) EXPECT_EQ(aid, 1u);

  // Memoized re-queries serve the cached rows: no re-firing.
  for (State q2 : d.support()) {
    const Signature sig = x.signature(q2);
    for (ActionId a : sig.out) x.transition(q2, a);
  }
  EXPECT_EQ(fired.size(), 2u);
}

TEST(DynamicPcaGc, RetireStatesOfReclaimsDeadSessionStates) {
  const MacServicePair svc = make_mac_service_pair({1}, "gcrt");
  DynamicPca& x = *svc.real_pca;
  const State q0 = x.start_state();
  const State q1 = x.transition(q0, act("open_gcrt_0")).support()[0];
  const State q2 = x.transition(q1, act("auth_gcrt_0")).support()[0];
  const StateDist forge = x.transition(q2, act("forge_gcrt_0"));
  for (State qr : forge.support()) {
    const Signature sig = x.signature(qr);
    for (ActionId a : sig.out) {
      EXPECT_EQ(x.transition(qr, a).support()[0], q0);
    }
  }
  const BitString enc_q1 = x.encode_state(q1);
  const std::size_t keys_before = x.intern_stats().keys;
  EXPECT_EQ(keys_before, 5u);  // start/idle/authed/win/lose

  // Every state mentioning the dead session goes; the start state stays.
  EXPECT_EQ(x.retire_states_of({Aid{1}}), 4u);
  EXPECT_EQ(x.states_retired(), 4u);
  EXPECT_THROW(x.config(q1), std::out_of_range);
  EXPECT_THROW(x.config(q2), std::out_of_range);
  EXPECT_THROW(x.transition(q1, act("auth_gcrt_0")), std::out_of_range);
  EXPECT_NO_THROW(x.config(q0));
  // 4 of 5 keys retired; the chunk itself stays held while the start
  // state's key keeps it partially live (chunk-granular reclamation).
  EXPECT_EQ(x.intern_stats().keys_retired, 4u);

  // Reopening re-creates the session under a *fresh* handle whose
  // semantics (encoding, configuration) match the retired one exactly.
  const State r1 = x.transition(q0, act("open_gcrt_0")).support()[0];
  EXPECT_NE(r1, q1);
  EXPECT_EQ(x.config(r1).size(), 2u);
  EXPECT_TRUE(x.encode_state(r1) == enc_q1);
  EXPECT_EQ(x.intern_stats().keys, keys_before + 1);
}

TEST(DynamicPcaGc, RefusesSnapshotPinsAndInitialMembers) {
  const MacServicePair svc = make_mac_service_pair({1}, "gcpin");
  DynamicPca& x = *svc.real_pca;
  const State q0 = x.start_state();
  State q = x.transition(q0, act("open_gcpin_0")).support()[0];
  q = x.transition(q, act("auth_gcpin_0")).support()[0];

  // The hub is in the initial configuration: never retirable.
  EXPECT_THROW(x.retire_states_of({Aid{0}}), std::logic_error);

  // A frozen snapshot pins the handle space.
  auto snap = x.freeze();
  EXPECT_THROW(x.retire_states_of({Aid{1}}), std::logic_error);
  snap.reset();
  EXPECT_GT(x.retire_states_of({Aid{1}}), 0u);
}

TEST(DynamicPcaGc, DifferentialGcNeverPerturbsLiveSessions) {
  // Two identical two-session services; one retires session 0's states,
  // the control never collects. Driving session 1 afterwards must agree
  // between them: signatures, exact f-dists (weights + state encodings),
  // and draw-for-draw samples through the compiled rows.
  const MacServicePair A = make_mac_service_pair({4, 4}, "gcdf");
  const MacServicePair B = make_mac_service_pair({4, 4}, "gcdf");
  auto drive_session0 = [](DynamicPca& x) {
    State q = x.start_state();
    q = x.transition(q, act("open_gcdf_0")).support()[0];
    q = x.transition(q, act("auth_gcdf_0")).support()[0];
    const StateDist d = x.transition(q, act("forge_gcdf_0"));
    for (State qr : d.support()) {
      const Signature sig = x.signature(qr);
      for (ActionId a : sig.out) x.transition(qr, a);
    }
  };
  drive_session0(*A.real_pca);
  drive_session0(*B.real_pca);
  ASSERT_EQ(A.real_pca->retire_states_of({Aid{1}}), 4u);

  DynamicPca& xa = *A.real_pca;
  DynamicPca& xb = *B.real_pca;
  // One lock-step transition on both sides, with the full comparison.
  auto step_both = [&](State qa, State qb, ActionId a) {
    EXPECT_TRUE(xa.signature(qa) == xb.signature(qb));
    const StateDist& da = xa.transition_dist(qa, a);
    const StateDist& db = xb.transition_dist(qb, a);
    EXPECT_EQ(da.entries().size(), db.entries().size());
    for (std::size_t i = 0; i < da.entries().size(); ++i) {
      EXPECT_TRUE(da.entries()[i].second == db.entries()[i].second);
      EXPECT_TRUE(xa.encode_state(da.entries()[i].first) ==
                  xb.encode_state(db.entries()[i].first));
    }
    const CompiledRow& ra = xa.compiled_row(qa, a);
    const CompiledRow& rb = xb.compiled_row(qb, a);
    for (double u : {0.0, 0.031, 0.0624, 0.0626, 0.5, 0.93, 0.9999}) {
      EXPECT_TRUE(xa.encode_state(ra.sample(u)) ==
                  xb.encode_state(rb.sample(u)));
    }
    return std::pair<State, State>{ra.targets[0], rb.targets[0]};
  };

  auto [qa, qb] = step_both(xa.start_state(), xb.start_state(),
                            act("open_gcdf_1"));
  std::tie(qa, qb) = step_both(qa, qb, act("auth_gcdf_1"));
  // Forge fans out to win/lose; chase both outcomes to destruction.
  const std::vector<State> outs_a = xa.transition(qa, act("forge_gcdf_1")).support();
  const std::vector<State> outs_b = xb.transition(qb, act("forge_gcdf_1")).support();
  std::tie(qa, qb) = step_both(qa, qb, act("forge_gcdf_1"));
  ASSERT_EQ(outs_a.size(), 2u);
  ASSERT_EQ(outs_b.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const Signature sig = xa.signature(outs_a[i]);
    ASSERT_EQ(sig.out.size(), 1u);
    step_both(outs_a[i], outs_b[i], sig.out[0]);
  }
}

// -- MacSessionService -------------------------------------------------------

TEST(MacSessionSvc, LifecycleRetiresKeysAndReopensFresh) {
  MacSessionService::Options o;
  o.k = 4;
  o.shards = 2;
  o.tag = "ms_a";
  MacSessionService svc(o);
  auto view = svc.worker_view();

  EXPECT_EQ(svc.auth(*view, 7), OpStatus::kNotFound);
  EXPECT_EQ(svc.open(*view, 7), OpStatus::kOk);
  EXPECT_EQ(svc.open(*view, 7), OpStatus::kBadState);   // double open
  EXPECT_EQ(svc.forge(*view, 7), OpStatus::kBadState);  // phase mismatch
  EXPECT_EQ(svc.auth(*view, 7), OpStatus::kOk);
  EXPECT_EQ(svc.forge(*view, 7), OpStatus::kOk);
  const auto h1 = svc.session_handles(7);
  ASSERT_EQ(h1.size(), 3u);  // one key per visited template state

  bool win = false;
  EXPECT_EQ(svc.close(*view, 7, &win), OpStatus::kOk);
  EXPECT_FALSE(svc.is_open(7));
  EXPECT_TRUE(svc.session_handles(7).empty());
  // Satellite contract: a destroyed session leaves no reachable interned
  // state, before *and* after the epoch boundary.
  EXPECT_EQ(svc.interner_live_keys(), 0u);
  svc.advance_epoch();
  EXPECT_EQ(svc.interner_live_keys(), 0u);

  // Reopening the same sid yields fresh handles for every state.
  EXPECT_EQ(svc.open(*view, 7), OpStatus::kOk);
  EXPECT_EQ(svc.auth(*view, 7), OpStatus::kOk);
  EXPECT_EQ(svc.forge(*view, 7), OpStatus::kOk);
  const auto h2 = svc.session_handles(7);
  ASSERT_EQ(h2.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NE(h2[i], h1[i]);
  EXPECT_EQ(svc.close(*view, 7), OpStatus::kOk);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.opened, 2u);
  EXPECT_EQ(s.closed, 2u);
  EXPECT_EQ(s.live, 0u);
  // Def 2.12 wiring witness: warming the template saw both resolving
  // rows destroy the session automaton.
  EXPECT_EQ(s.template_destructions, 2u);
  EXPECT_DOUBLE_EQ(svc.advantage(), 1.0 / 16.0);
}

TEST(MacSessionSvc, BackpressureRejectsBeyondAdmissionBound) {
  MacSessionService::Options o;
  o.k = 4;
  o.max_admitted = 2;
  o.tag = "ms_b";
  MacSessionService svc(o);
  auto view = svc.worker_view();
  EXPECT_EQ(svc.open(*view, 1), OpStatus::kOk);
  EXPECT_EQ(svc.open(*view, 2), OpStatus::kOk);
  EXPECT_EQ(svc.open(*view, 3), OpStatus::kRejected);
  EXPECT_EQ(svc.stats().rejected, 1u);
  // Shedding is load-coupled, not permanent: capacity freed, sid admitted.
  EXPECT_EQ(svc.abandon(1), OpStatus::kOk);
  EXPECT_EQ(svc.open(*view, 3), OpStatus::kOk);
}

TEST(MacSessionSvc, CrashDrillStopsSessionsAndAbandonReclaims) {
  MacSessionService::Options o;
  o.k = 4;
  o.crash_prob = 1.0;
  o.tag = "ms_c";
  MacSessionService svc(o);
  auto view = svc.worker_view();
  EXPECT_EQ(svc.open(*view, 5), OpStatus::kOk);  // crash marked at open
  EXPECT_EQ(svc.auth(*view, 5), OpStatus::kCrashed);
  EXPECT_EQ(svc.forge(*view, 5), OpStatus::kCrashed);
  EXPECT_EQ(svc.close(*view, 5), OpStatus::kCrashed);
  EXPECT_EQ(svc.abandon(5), OpStatus::kOk);
  EXPECT_EQ(svc.stats().abandoned, 1u);
  EXPECT_EQ(svc.interner_live_keys(), 0u);
}

TEST(MacSessionSvc, EpochCompactionRemapsHeldSessions) {
  MacSessionService::Options o;
  o.k = 4;
  o.shards = 2;
  o.compact_threshold = 0.3;
  o.tag = "ms_d";
  MacSessionService svc(o);
  auto view = svc.worker_view();
  constexpr std::uint64_t kSessions = 3000;
  constexpr std::uint64_t kHeld = 10;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    ASSERT_EQ(svc.open(*view, sid), OpStatus::kOk);
    ASSERT_EQ(svc.auth(*view, sid), OpStatus::kOk);
    ASSERT_EQ(svc.forge(*view, sid), OpStatus::kOk);
  }
  for (std::uint64_t sid = kHeld; sid < kSessions; ++sid) {
    ASSERT_EQ(svc.close(*view, sid), OpStatus::kOk);
  }
  // Garbage fraction is ~99.7%: compaction must fire, renumbering local
  // handles -- the held sessions' stored handles are rewritten in place.
  const auto cr = svc.advance_epoch();
  EXPECT_GE(cr.shards_compacted, 1u);
  EXPECT_GT(cr.keys_collected, 0u);
  EXPECT_GT(cr.bytes_reclaimed, 0u);
  EXPECT_EQ(svc.interner_live_keys(), 3 * kHeld);
  // Held sessions survived compaction: their keys resolve and they close.
  for (std::uint64_t sid = 0; sid < kHeld; ++sid) {
    ASSERT_EQ(svc.session_handles(sid).size(), 3u);
    ASSERT_EQ(svc.close(*view, sid), OpStatus::kOk);
  }
  EXPECT_EQ(svc.stats().closed, kSessions);
  EXPECT_EQ(svc.interner_live_keys(), 0u);
}

// -- LatencyRecorder ---------------------------------------------------------

TEST(SoakLatency, Log2QuantilesAndMerge) {
  LatencyRecorder r;
  for (int i = 0; i < 99; ++i) r.record(1000);
  r.record(std::uint64_t{1} << 20);
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.max_ns(), std::uint64_t{1} << 20);
  // p50 answers from the [512, 1023] bucket; p100 from the outlier's.
  EXPECT_GE(r.quantile_ns(0.5), 512u);
  EXPECT_LE(r.quantile_ns(0.5), 1023u);
  EXPECT_GE(r.quantile_ns(1.0), std::uint64_t{1} << 20);
  EXPECT_GT(r.mean_ns(), 1000.0);

  LatencyRecorder other;
  other.record(0);
  other.merge(r);
  EXPECT_EQ(other.count(), 101u);
  EXPECT_EQ(other.max_ns(), r.max_ns());
  EXPECT_EQ(other.quantile_ns(0.001), 0u);
}

// -- run_soak ----------------------------------------------------------------

TEST(Soak, OutcomeDigestInvariantUnderGcAndWorkers) {
  SoakOptions base;
  base.sessions = 4000;
  base.wave = 128;
  base.hold_waves = 2;
  base.k = 6;
  base.seed = 0xfeedULL;
  base.workers = 1;
  base.shards = 2;
  base.compact_threshold = 0.3;

  const SoakReport r1 = run_soak(base);
  EXPECT_TRUE(r1.complete) << r1.error;
  EXPECT_EQ(r1.sessions_completed, base.sessions);
  EXPECT_EQ(r1.interner_live_keys, 0u);
  EXPECT_GT(r1.gc_bytes_reclaimed, 0u);
  EXPECT_GT(r1.epochs, 0u);
  EXPECT_EQ(r1.ops[0].ok, base.sessions);  // open
  EXPECT_EQ(r1.ops[3].ok, base.sessions);  // close

  SoakOptions par = base;
  par.workers = 4;
  const SoakReport r4 = run_soak(par);
  EXPECT_TRUE(r4.complete) << r4.error;

  SoakOptions nogc = base;
  nogc.gc = false;
  const SoakReport rn = run_soak(nogc);
  EXPECT_TRUE(rn.complete) << rn.error;

  // The differential: same (seed, sid set) => same outcomes, whatever
  // the worker count or GC schedule.
  EXPECT_EQ(r4.outcome_digest, r1.outcome_digest);
  EXPECT_EQ(rn.outcome_digest, r1.outcome_digest);
  EXPECT_EQ(r4.forgeries, r1.forgeries);
  EXPECT_EQ(rn.forgeries, r1.forgeries);
  EXPECT_EQ(rn.sessions_completed, r1.sessions_completed);
  // GC off keeps every key alive: 3 per completed session.
  EXPECT_EQ(rn.interner_live_keys, 3 * base.sessions);
}

TEST(Soak, DeadlineDrillDegradesToPartialReport) {
  SoakOptions o;
  o.sessions = 64;
  o.wave = 16;
  o.workers = 2;
  o.deadline = std::chrono::nanoseconds{1};  // unmeetable
  o.max_retries = 1;
  const SoakReport r = run_soak(o);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.sessions_completed, 0u);
  std::uint64_t timeouts = 0, retries = 0, failures = 0;
  for (const auto& os : r.ops) {
    timeouts += os.timeouts;
    retries += os.retries;
    failures += os.failures;
  }
  EXPECT_GT(timeouts, 0u);
  EXPECT_GT(retries, 0u);   // seed rotation was attempted
  EXPECT_GT(failures, 0u);  // and eventually given up on
  // Degradation is graceful: the partial rows still carry latencies.
  EXPECT_GT(r.ops[0].latency.count(), 0u);
}

TEST(Soak, CrashDrillAbandonsEveryCrashedSession) {
  SoakOptions o;
  o.sessions = 64;
  o.wave = 16;
  o.workers = 2;
  o.crash_prob = 1.0;
  const SoakReport r = run_soak(o);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.crashed, o.sessions);
  EXPECT_EQ(r.abandoned, o.sessions);
  EXPECT_EQ(r.sessions_completed, 0u);
  EXPECT_EQ(r.interner_live_keys, 0u);  // abandon retired their keys
}

}  // namespace
}  // namespace cdse
