// Memoized transition engine: semantics-neutrality and regression suite.
//
// The memo layer (psioa/memo.hpp) must be invisible to every observer:
// exact f-dists, sampled f-dists at a fixed seed, signatures and
// transition distributions must all be identical with memoization on and
// off, on random PSIOA and on composed/hidden/renamed/structured stacks.
// The regression half pins the property that motivated the refactor:
// ComposedPsioa::transition no longer recomputes signature(q) per call,
// and warm caches keep compute counters flat while hit counters grow.

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/memo.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"

namespace cdse {
namespace {

constexpr std::size_t kFdistDepth = 4;
constexpr std::size_t kSampleDepth = 8;
constexpr std::size_t kTrials = 400;

/// A compatible pair plus independent clones (regenerated on an identical
/// RNG stream), mirroring the algebra_property_test idiom.
struct Ensemble {
  std::shared_ptr<ExplicitPsioa> a, b;
  std::shared_ptr<ExplicitPsioa> a2, b2;
};

Ensemble make_ensemble(int seed, const std::string& tag) {
  Xoshiro256 rng(seed * 7919 + 13);
  Xoshiro256 rng2(seed * 7919 + 13);
  RandomPsioaConfig ca;
  ca.n_states = 3;
  ca.n_outputs = 2;
  ca.n_internals = 1;
  RandomPsioaConfig cb = ca;
  cb.input_candidates = acts({"rout0_" + tag + "a", "rout1_" + tag + "a"});
  Ensemble e;
  e.a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
  e.b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
  e.a2 = make_random_psioa(tag + "_A2", tag + "a", ca, rng2);
  e.b2 = make_random_psioa(tag + "_B2", tag + "b", cb, rng2);
  return e;
}

/// Exact f-dist of `sys` with memoization toggled as requested. A fresh
/// scheduler per call so scheduler-side row caches cannot leak between
/// the two sides of a comparison.
ExactDisc<Perception> exact_side(Psioa& sys, bool memo_on) {
  sys.set_memoization(memo_on);
  UniformScheduler sched(kFdistDepth, /*local_only=*/true);
  TraceInsight f;
  return exact_fdist(sys, sched, f, kFdistDepth + 1);
}

/// Sampled f-dist at a fixed seed with memoization toggled as requested.
Disc<Perception, double> sampled_side(Psioa& sys, bool memo_on,
                                      std::uint64_t seed) {
  sys.set_memoization(memo_on);
  UniformScheduler sched(kSampleDepth, /*local_only=*/true);
  TraceInsight f;
  return sample_fdist(sys, sched, f, kTrials, seed, kSampleDepth);
}

class MemoEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MemoEquivalence, ComposedExactFdistUnchangedByMemoToggle) {
  const std::string tag = "me_a" + std::to_string(GetParam());
  const Ensemble e = make_ensemble(GetParam(), tag);
  auto sys = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  const auto memoized = exact_side(*sys, true);
  const auto direct = exact_side(*sys, false);
  EXPECT_EQ(memoized, direct);
}

TEST_P(MemoEquivalence, ComposedSampledFdistUnchangedByMemoToggle) {
  // Draw-for-draw reproducibility: the compiled CDF walk replicates the
  // historical to_double() partial-sum walk, so at a fixed seed the two
  // paths produce *identical* empirical distributions, not just close.
  const std::string tag = "me_b" + std::to_string(GetParam());
  const Ensemble e = make_ensemble(GetParam(), tag);
  auto sys = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  const std::uint64_t seed = 1000 + GetParam();
  const auto memoized = sampled_side(*sys, true, seed);
  const auto direct = sampled_side(*sys, false, seed);
  EXPECT_EQ(memoized, direct);
}

TEST_P(MemoEquivalence, HiddenRenamedStackUnchangedByMemoToggle) {
  const std::string tag = "me_c" + std::to_string(GetParam());
  const Ensemble e = make_ensemble(GetParam(), tag);
  const ActionBijection g = ActionBijection::with_suffix(
      acts({"rout0_" + tag + "a"}), "#memo");
  const ActionSet hidden = acts({"rout1_" + tag + "a"});
  auto sys = rename_actions(
      hide_actions(compose(PsioaPtr(e.a), PsioaPtr(e.b)), hidden), g);
  const auto memo_exact = exact_side(*sys, true);
  const auto direct_exact = exact_side(*sys, false);
  EXPECT_EQ(memo_exact, direct_exact);
  const std::uint64_t seed = 2000 + GetParam();
  const auto memo_sampled = sampled_side(*sys, true, seed);
  const auto direct_sampled = sampled_side(*sys, false, seed);
  EXPECT_EQ(memo_sampled, direct_sampled);
}

TEST_P(MemoEquivalence, MemoViewMatchesDirectLeaf) {
  // memoize() wraps a leaf automaton sharing its state handles; the view
  // must agree with an independent direct clone on signatures,
  // transitions, and the exact f-dist.
  const std::string tag = "me_d" + std::to_string(GetParam());
  const Ensemble e = make_ensemble(GetParam(), tag);
  auto view = memoize(PsioaPtr(e.a));
  const State q0 = view->start_state();
  EXPECT_EQ(q0, e.a2->start_state());
  EXPECT_EQ(view->signature(q0), e.a2->signature(q0));
  for (ActionId a : view->enabled(q0)) {
    EXPECT_EQ(view->transition(q0, a), e.a2->transition(q0, a));
  }
  UniformScheduler sv(kFdistDepth, true);
  UniformScheduler sd(kFdistDepth, true);
  TraceInsight f;
  const auto dv = exact_fdist(*view, sv, f, kFdistDepth + 1);
  const auto dd = exact_fdist(*e.a2, sd, f, kFdistDepth + 1);
  EXPECT_EQ(balance_distance(dv, dd), Rational(0));
}

INSTANTIATE_TEST_SUITE_P(Random, MemoEquivalence, ::testing::Range(0, 8));

TEST(MemoEquivalence, StructuredSecureStackUnchangedByMemoToggle) {
  // The structured real/ideal stacks of the secure-emulation experiments
  // are built from compose/hide wrappers, so the whole stack rides the
  // memo base; toggling memoization must not move a single weight.
  const std::string tag = "me_sec";
  const RealIdealPair mac = make_otmac_pair(4, tag);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
  auto sys = compose(env, compose(mac.real.ptr(), adv));
  const auto memo_exact = exact_side(*sys, true);
  const auto direct_exact = exact_side(*sys, false);
  EXPECT_EQ(memo_exact, direct_exact);
  const auto memo_sampled = sampled_side(*sys, true, 42);
  const auto direct_sampled = sampled_side(*sys, false, 42);
  EXPECT_EQ(memo_sampled, direct_sampled);
}

class MemoRegression : public ::testing::Test {
 protected:
  std::shared_ptr<ComposedPsioa> make_system(const std::string& tag) {
    const Ensemble e = make_ensemble(7, tag);
    return compose(PsioaPtr(e.a), PsioaPtr(e.b));
  }
};

TEST_F(MemoRegression, ComposedTransitionDoesNotRecomputeSignature) {
  // The motivating regression: transition(q, a) used to re-derive the
  // composed signature(q) on every call to enforce compatibility. With
  // the memo base it resolves the cached signature, so repeated
  // transitions at a warm state add zero sig/row computes.
  auto sys = make_system("mr_a");
  const State q0 = sys->start_state();
  const ActionSet en = sys->enabled(q0);
  ASSERT_FALSE(en.empty());
  const ActionId a0 = en.front();
  (void)sys->transition(q0, a0);  // warm
  const MemoStats warm = sys->memo_stats();
  for (int i = 0; i < 25; ++i) (void)sys->transition(q0, a0);
  const MemoStats after = sys->memo_stats();
  EXPECT_EQ(after.sig_computes, warm.sig_computes);
  EXPECT_EQ(after.row_computes, warm.row_computes);
  EXPECT_GE(after.row_hits, warm.row_hits + 25);
}

TEST_F(MemoRegression, SignatureComputedOncePerState) {
  auto sys = make_system("mr_b");
  const State q0 = sys->start_state();
  (void)sys->signature(q0);
  const MemoStats warm = sys->memo_stats();
  EXPECT_GE(warm.sig_computes, 1u);
  for (int i = 0; i < 10; ++i) (void)sys->signature(q0);
  const MemoStats after = sys->memo_stats();
  EXPECT_EQ(after.sig_computes, warm.sig_computes);
  EXPECT_GE(after.sig_hits, warm.sig_hits + 10);
}

TEST_F(MemoRegression, DisablingMemoizationRestoresRecomputePerCall) {
  auto sys = make_system("mr_c");
  const State q0 = sys->start_state();
  const ActionId a0 = sys->enabled(q0).front();
  sys->set_memoization(false);
  EXPECT_FALSE(sys->memoization_enabled());
  const MemoStats before = sys->memo_stats();
  for (int i = 0; i < 5; ++i) {
    (void)sys->transition(q0, a0);
    (void)sys->signature(q0);
  }
  const MemoStats after = sys->memo_stats();
  EXPECT_GE(after.row_computes, before.row_computes + 5);
  EXPECT_GE(after.sig_computes, before.sig_computes + 5);
  EXPECT_EQ(after.row_hits, before.row_hits);
  EXPECT_EQ(after.sig_hits, before.sig_hits);
}

TEST_F(MemoRegression, ClearMemoRecomputesOnce) {
  auto sys = make_system("mr_d");
  const State q0 = sys->start_state();
  const ActionId a0 = sys->enabled(q0).front();
  (void)sys->transition(q0, a0);
  const MemoStats warm = sys->memo_stats();
  sys->clear_memo();
  (void)sys->transition(q0, a0);
  const MemoStats after = sys->memo_stats();
  EXPECT_EQ(after.row_computes, warm.row_computes + 1);
}

TEST(CompiledRowTest, CdfMatchesExactPartialSums) {
  const Ensemble e = make_ensemble(3, "cr_a");
  auto sys = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  const State q0 = sys->start_state();
  for (ActionId a : sys->enabled(q0)) {
    const CompiledRow& row = sys->compiled_row(q0, a);
    const StateDist eta = sys->transition(q0, a);
    EXPECT_EQ(row.dist, eta);
    ASSERT_EQ(row.targets.size(), eta.entries().size());
    double acc = 0.0;
    for (std::size_t i = 0; i < eta.entries().size(); ++i) {
      EXPECT_EQ(row.targets[i], eta.entries()[i].first);
      acc += eta.entries()[i].second.to_double();
      EXPECT_DOUBLE_EQ(row.cdf[i], acc);
    }
  }
}

TEST(CompiledRowTest, SampleBoundaryBehaviour) {
  StateDist d;
  d.add(State{11}, Rational(1, 4));
  d.add(State{22}, Rational(1, 4));
  d.add(State{33}, Rational(1, 2));
  const CompiledRow row = CompiledRow::compile(d);
  EXPECT_EQ(row.sample(0.0), row.targets.front());
  EXPECT_EQ(row.sample(0.2499), row.targets[0]);
  EXPECT_EQ(row.sample(0.25), row.targets[1]);
  EXPECT_EQ(row.sample(0.4999), row.targets[1]);
  EXPECT_EQ(row.sample(0.5), row.targets[2]);
  // Round-off shortfall at u ~ 1 is absorbed by the final target.
  EXPECT_EQ(row.sample(1.0), row.targets.back());
}

TEST(ChoiceRowTest, CompileMatchesChooseAndHaltMass) {
  // A half-total choice leaves halting mass: sample must return
  // kInvalidAction exactly on the residual.
  ActionChoice c;
  const ActionId x = act("chr_x");
  const ActionId y = act("chr_y");
  c.add(x, Rational(1, 4));
  c.add(y, Rational(1, 4));
  const ChoiceRow row = ChoiceRow::compile(c);
  ASSERT_EQ(row.actions.size(), 2u);
  EXPECT_DOUBLE_EQ(row.cdf.back(), 0.5);
  EXPECT_EQ(row.sample(0.1), row.actions[0]);
  EXPECT_EQ(row.sample(0.3), row.actions[1]);
  EXPECT_EQ(row.sample(0.75), kInvalidAction);
}

TEST(ChoiceRowTest, UniformSchedulerRowMatchesChooseAndIsCached) {
  const Ensemble e = make_ensemble(5, "chr_a");
  auto sys = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  UniformScheduler sched(6, true);
  ExecFragment alpha = ExecFragment::starting_at(sys->start_state());
  const ChoiceRow* row1 = sched.choice_row(*sys, alpha);
  const ChoiceRow expected = ChoiceRow::compile(sched.choose(*sys, alpha));
  ASSERT_EQ(row1->actions, expected.actions);
  ASSERT_EQ(row1->cdf.size(), expected.cdf.size());
  for (std::size_t i = 0; i < expected.cdf.size(); ++i) {
    EXPECT_DOUBLE_EQ(row1->cdf[i], expected.cdf[i]);
  }
  // Per-state memo: the same (automaton, state) yields the same row
  // object, not a recompiled copy.
  const ChoiceRow* row2 = sched.choice_row(*sys, alpha);
  EXPECT_EQ(row1, row2);
}

TEST(ChoiceRowTest, StateChoiceCacheClearsOnAutomatonChange) {
  // A scheduler reused across automata must not serve rows warmed
  // against a different instance.
  const Ensemble e = make_ensemble(6, "chr_b");
  auto left = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  auto right = compose(PsioaPtr(e.a2), PsioaPtr(e.b2));
  UniformScheduler sched(6, true);
  ExecFragment la = ExecFragment::starting_at(left->start_state());
  ExecFragment ra = ExecFragment::starting_at(right->start_state());
  (void)sched.choice_row(*left, la);
  const ChoiceRow* rr = sched.choice_row(*right, ra);
  const ChoiceRow expected = ChoiceRow::compile(sched.choose(*right, ra));
  EXPECT_EQ(rr->actions, expected.actions);
}

TEST(ChoiceRowTest, DepthBoundYieldsEmptyRow) {
  const Ensemble e = make_ensemble(4, "chr_c");
  auto sys = compose(PsioaPtr(e.a), PsioaPtr(e.b));
  UniformScheduler sched(0, true);  // bound 0: halts immediately
  ExecFragment alpha = ExecFragment::starting_at(sys->start_state());
  const ChoiceRow* row = sched.choice_row(*sys, alpha);
  EXPECT_TRUE(row->empty());
}

}  // namespace
}  // namespace cdse
