// ThreadPool failure paths (util/thread_pool.hpp).
//
// The exception contract is what the hardened engine builds on: a
// throwing task must surface as a catchable exception from wait_idle()
// on the submitting thread -- never std::terminate -- and the pool must
// stay usable afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace cdse {
namespace {

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, ExceptionMessagePreserved) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("distinctive message"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "distinctive message");
  }
}

TEST(ThreadPool, FirstErrorWinsAndOthersAreDropped) {
  // Many failing tasks: exactly one exception comes out, and it is one of
  // the submitted ones (first-error-wins is defined by completion order,
  // which is nondeterministic; what is guaranteed is "exactly one").
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit([i] { throw std::runtime_error("e" + std::to_string(i)); });
  }
  int caught = 0;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  // A second wait on the now-idle pool must not rethrow again.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, SurvivingTasksStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      if (i == 3) throw std::runtime_error("one bad apple");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure costs one task, not the batch.
  EXPECT_EQ(ran.load(), 7);
}

TEST(ThreadPool, ReusableAfterFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first batch fails"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);

  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, NonStandardExceptionAlsoSurfaces) {
  ThreadPool pool(2);
  pool.submit([] { throw 42; });
  EXPECT_THROW(pool.wait_idle(), int);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, DestructionWithPendingFailureIsClean) {
  // An exception still pending at destruction is discarded; the
  // destructor must drain and join without terminating the process.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran, i] {
        if (i % 2 == 0) throw std::runtime_error("pending at destruction");
        ran.fetch_add(1);
      });
    }
    // No wait_idle: destructor takes over with the error still latched.
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, WaitIdleForDrainsAndReturnsTrue) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  std::string diag = "untouched";
  EXPECT_TRUE(pool.wait_idle_for(std::chrono::milliseconds(10000), &diag));
  EXPECT_EQ(diag, "untouched");  // only written on timeout
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, WaitIdleForTimesOutWithStuckDiagnostic) {
  // One task blocks until released: the bounded wait must return false
  // with a running/queued breakdown instead of hanging, and the pool must
  // drain normally once the task is released.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });
  pool.submit([] {});  // sits queued behind the stuck task
  std::string diag;
  EXPECT_FALSE(pool.wait_idle_for(std::chrono::milliseconds(50), &diag));
  EXPECT_NE(diag.find("not idle"), std::string::npos);
  EXPECT_NE(diag.find("1 task(s) running"), std::string::npos);
  EXPECT_NE(diag.find("1 queued"), std::string::npos);
  EXPECT_GE(pool.pending(), 1u);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(pool.wait_idle_for(std::chrono::milliseconds(10000), nullptr));
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, WaitIdleForRethrowsFirstErrorOnDrain) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("timed batch failed"); });
  EXPECT_THROW(pool.wait_idle_for(std::chrono::milliseconds(10000), nullptr),
               std::runtime_error);
  // Error consumed: the pool is reusable, like after wait_idle().
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, ParallelForPropagatesChunkFailure) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_chunks(pool, 1000,
                          [](std::size_t chunk, std::size_t, std::size_t) {
                            if (chunk == 0)
                              throw std::runtime_error("chunk 0 failed");
                          }),
      std::runtime_error);
  // Pool still serviceable for the next call.
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(pool, 100,
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        total.fetch_add(e - b);
                      });
  EXPECT_EQ(total.load(), 100u);
}

}  // namespace
}  // namespace cdse
