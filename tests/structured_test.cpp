// Structured automata and adversaries (secure/structured.hpp,
// secure/adversary.hpp; Defs 4.17-4.25).

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "secure/adversary.hpp"
#include "secure/structured.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

StructuredPsioa make_structured_bern(const std::string& inst,
                                     const std::string& tag) {
  // go/yes env-facing, leak adversary-facing output.
  auto b = make_bernoulli(inst, "sgo_" + tag, "syes_" + tag, "sno_" + tag,
                          Rational(1, 2));
  return StructuredPsioa(b, acts({"sgo_" + tag, "syes_" + tag}), {},
                         acts({"sno_" + tag}));
}

TEST(Structured, VocabulariesMustBeDisjoint) {
  auto b = make_bernoulli("str_a", "sa_go", "sa_y", "sa_n", Rational(1, 2));
  EXPECT_THROW(StructuredPsioa(b, acts({"sa_go"}), acts({"sa_go"}), {}),
               std::logic_error);
}

TEST(Structured, PerStateMappings) {
  const StructuredPsioa s = make_structured_bern("str_b", "str_b");
  const State q0 = s.automaton().start_state();
  EXPECT_EQ(s.eact(q0), acts({"sgo_str_b"}));
  EXPECT_TRUE(s.aact(q0).empty());  // the leak appears at a later state
  EXPECT_EQ(s.ei(q0), acts({"sgo_str_b"}));
  EXPECT_TRUE(s.eo(q0).empty());
  const State no_state =
      s.automaton().transition(q0, act("sgo_str_b")).support()[1];
  // One of the branch states carries either env-out or adv-out.
  const ActionSet ao = s.ao(no_state);
  const ActionSet eo = s.eo(no_state);
  EXPECT_EQ(ao.size() + eo.size(), 1u);
}

TEST(Structured, ValidateAcceptsCoveredAutomata) {
  const StructuredPsioa s = make_structured_bern("str_c", "str_c");
  EXPECT_NO_THROW(s.validate(8));
}

TEST(Structured, ValidateRejectsUnclassifiedActions) {
  auto b = make_bernoulli("str_d", "sd_go", "sd_y", "sd_n", Rational(1, 2));
  const StructuredPsioa s(b, acts({"sd_go"}), {}, {});  // y, n unclassified
  EXPECT_THROW(s.validate(8), std::logic_error);
}

TEST(Structured, ValidateRejectsWrongDirection) {
  auto b = make_bernoulli("str_e", "se_go", "se_y", "se_n", Rational(1, 2));
  // se_y is an output but declared as adversary *input*.
  const StructuredPsioa s(b, acts({"se_go", "se_n"}), acts({"se_y"}), {});
  EXPECT_THROW(s.validate(8), std::logic_error);
}

TEST(Structured, CompatibilityRequiresSharedActionsEnvBothSides) {
  const RealIdealPair mac = make_otmac_pair(2, "str_f");
  const RealIdealPair otp = make_otp_pair(2, "str_g");
  // Disjoint vocabularies: compatible.
  EXPECT_TRUE(structured_compatible(mac.real, otp.real));
  // An automaton whose *adversary* vocabulary intersects another's: not.
  auto probe = make_bernoulli("str_h", "forge_str_f", "sh_y", "sh_n",
                              Rational(1, 2));
  const StructuredPsioa bad(probe, acts({"sh_y", "sh_n"}),
                            acts({"forge_str_f"}), {});
  EXPECT_FALSE(structured_compatible(mac.real, bad));
  EXPECT_THROW(compose_structured(mac.real, bad), std::logic_error);
}

TEST(Structured, CompositionUnitesVocabularies) {
  const RealIdealPair mac = make_otmac_pair(2, "str_i");
  const RealIdealPair otp = make_otp_pair(2, "str_j");
  const StructuredPsioa c = compose_structured(mac.real, otp.real);
  EXPECT_EQ(c.env_vocab(),
            set::unite(mac.real.env_vocab(), otp.real.env_vocab()));
  EXPECT_EQ(c.aact_vocab(),
            set::unite(mac.real.aact_vocab(), otp.real.aact_vocab()));
  // n-ary form agrees.
  const StructuredPsioa c2 = compose_structured({mac.real, otp.real});
  EXPECT_EQ(c2.env_vocab(), c.env_vocab());
}

TEST(Structured, HideRemovesFromAllVocabularies) {
  const RealIdealPair otp = make_otp_pair(2, "str_k");
  const StructuredPsioa h =
      hide_structured(otp.real, acts({"cipher0_str_k", "cipher1_str_k"}));
  EXPECT_TRUE(h.aact_vocab().empty());
  EXPECT_EQ(h.env_vocab(), otp.real.env_vocab());
}

TEST(Structured, RenameAdversaryActionsLeavesEnvUntouched) {
  const RealIdealPair mac = make_otmac_pair(2, "str_l");
  const ActionBijection g =
      ActionBijection::with_suffix(mac.real.aact_vocab(), "#r");
  const StructuredPsioa r = rename_adversary_actions(mac.real, g);
  EXPECT_EQ(r.env_vocab(), mac.real.env_vocab());
  EXPECT_EQ(r.adv_in_vocab(), acts({"forge_str_l#r"}));
}

TEST(Adversary, SinkWithCommandsSatisfiesDef424) {
  const RealIdealPair mac = make_otmac_pair(2, "str_m");
  const PsioaPtr adv =
      make_sink_adversary("str_m_adv", {}, acts({"forge_str_m"}));
  const AdversaryCheckResult res = check_adversary_for(mac.real, adv, 8);
  EXPECT_TRUE(res.ok) << res.violation;
  EXPECT_GT(res.states_checked, 0u);
}

TEST(Adversary, MissingCommandOutputViolatesDef424) {
  const RealIdealPair mac = make_otmac_pair(2, "str_n");
  const PsioaPtr adv = make_sink_adversary("str_n_adv", {});  // no outputs
  const AdversaryCheckResult res = check_adversary_for(mac.real, adv, 8);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("does not offer"), std::string::npos);
}

TEST(Adversary, TouchingEnvironmentActionsViolatesDef424) {
  const RealIdealPair mac = make_otmac_pair(2, "str_o");
  // An "adversary" that also listens on the env action auth.
  const PsioaPtr adv = make_sink_adversary(
      "str_o_adv", acts({"auth_str_o"}), acts({"forge_str_o"}));
  const AdversaryCheckResult res = check_adversary_for(mac.real, adv, 8);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("environment actions"), std::string::npos);
}

TEST(Adversary, RelayIsAdversaryForOtp) {
  const RealIdealPair otp = make_otp_pair(2, "str_p");
  const PsioaPtr relay = make_relay_adversary(
      "str_p_relay", {{act("cipher0_str_p"), act("tell0_str_p")},
                      {act("cipher1_str_p"), act("tell1_str_p")}});
  const AdversaryCheckResult res = check_adversary_for(otp.real, relay, 8);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(Adversary, Lemma425RestrictionToComponent) {
  // Adv for A||B is an adversary for A: we verify the concrete instance.
  const RealIdealPair mac = make_otmac_pair(2, "str_q");
  const RealIdealPair otp = make_otp_pair(2, "str_r");
  const StructuredPsioa both = compose_structured(mac.real, otp.real);
  const PsioaPtr adv = make_sink_adversary(
      "str_q_adv", acts({"cipher0_str_r", "cipher1_str_r"}),
      acts({"forge_str_q"}));
  EXPECT_TRUE(check_adversary_for(both, adv, 8).ok);
  EXPECT_TRUE(check_adversary_for(mac.real, adv, 8).ok);
  EXPECT_TRUE(check_adversary_for(otp.real, adv, 8).ok);
}

TEST(Adversary, RelayRejectsDuplicateInputs) {
  EXPECT_THROW(
      make_relay_adversary("str_s_relay",
                           {{act("str_s_x"), act("str_s_a")},
                            {act("str_s_x"), act("str_s_b")}}),
      std::logic_error);
}

}  // namespace
}  // namespace cdse
