// Parallel composition (psioa/compose.hpp; Defs 2.5, 2.18).

#include "psioa/compose.hpp"

#include <gtest/gtest.h>

#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_emitter;
using testing::make_listener;

TEST(Compose, EmptyListRejected) {
  EXPECT_THROW(compose(std::vector<PsioaPtr>{}), std::invalid_argument);
}

TEST(Compose, StartStateIsTupleOfStarts) {
  auto e = make_emitter("c_em1", "c_msg1");
  auto l = make_listener("c_li1", "c_msg1");
  auto c = compose(e, l);
  const State q0 = c->start_state();
  EXPECT_EQ(c->project(q0, 0), e->start_state());
  EXPECT_EQ(c->project(q0, 1), l->start_state());
  EXPECT_EQ(c->component_count(), 2u);
}

TEST(Compose, SignatureFollowsDef24) {
  auto e = make_emitter("c_em2", "c_msg2");
  auto l = make_listener("c_li2", "c_msg2");
  auto c = compose(e, l);
  const Signature sig = c->signature(c->start_state());
  // msg is output of the emitter: absorbed from the input side.
  EXPECT_EQ(sig.out, acts({"c_msg2"}));
  EXPECT_TRUE(sig.in.empty());
}

TEST(Compose, SharedActionMovesBothComponents) {
  auto e = make_emitter("c_em3", "c_msg3");
  auto l = make_listener("c_li3", "c_msg3");
  auto c = compose(e, l);
  const StateDist d = c->transition(c->start_state(), act("c_msg3"));
  ASSERT_EQ(d.support_size(), 1u);
  const State q1 = d.support()[0];
  EXPECT_EQ(e->state_label(c->project(q1, 0)), "spent");
  EXPECT_EQ(l->state_label(c->project(q1, 1)), "idle");
}

TEST(Compose, NonParticipantStaysViaDirac) {
  auto e = make_emitter("c_em4", "c_msg4");
  auto other = make_listener("c_li4", "c_unrelated4");
  auto c = compose(e, other);
  const StateDist d = c->transition(c->start_state(), act("c_msg4"));
  ASSERT_EQ(d.support_size(), 1u);
  EXPECT_EQ(c->project(d.support()[0], 1), other->start_state());
}

TEST(Compose, ProductOfProbabilisticTransitions) {
  // Two Bernoulli automata triggered by one shared input action.
  auto b1 = make_bernoulli("c_b1", "c_go5", "c_y51", "c_n51",
                           Rational(1, 2));
  auto b2 = make_bernoulli("c_b2", "c_go5", "c_y52", "c_n52",
                           Rational(1, 3));
  auto c = compose(b1, b2);
  const StateDist d = c->transition(c->start_state(), act("c_go5"));
  EXPECT_EQ(d.support_size(), 4u);
  EXPECT_EQ(d.total(), Rational(1));
  // P[yes1, yes2] = 1/2 * 1/3.
  Rational yy;
  for (const auto& [q, w] : d.entries()) {
    if (b1->state_label(c->project(q, 0)) == "yes" &&
        b2->state_label(c->project(q, 1)) == "yes") {
      yy = w;
    }
  }
  EXPECT_EQ(yy, Rational(1, 6));
}

TEST(Compose, OutputOutputClashThrowsOnContact) {
  auto e1 = make_emitter("c_em6a", "c_msg6");
  auto e2 = make_emitter("c_em6b", "c_msg6");
  auto c = compose(e1, e2);
  EXPECT_THROW(c->signature(c->start_state()), IncompatibilityError);
}

TEST(Compose, PartiallyCompatibleExplorerDetectsDeepClash) {
  // Compatible at the start, incompatible after both emitters fire.
  // Construct: A emits x then wants to emit z; B emits y then z.
  auto mk = [](const std::string& name, const std::string& first) {
    auto a = std::make_shared<ExplicitPsioa>(name);
    const State s0 = a->add_state("s0");
    const State s1 = a->add_state("s1");
    const State s2 = a->add_state("s2");
    a->set_start(s0);
    Signature sig0;
    sig0.out = acts({first});
    a->set_signature(s0, sig0);
    Signature sig1;
    sig1.out = acts({"c_clash7"});
    a->set_signature(s1, sig1);
    a->set_signature(s2, Signature{});
    a->add_step(s0, act(first), s1);
    a->add_step(s1, act("c_clash7"), s2);
    a->validate();
    return a;
  };
  EXPECT_FALSE(partially_compatible({mk("c_pa7", "c_x7"), mk("c_pb7", "c_y7")},
                                    4));
  // A lone automaton is trivially partially compatible.
  EXPECT_TRUE(partially_compatible({mk("c_pc7", "c_z7")}, 4));
}

TEST(Compose, StateLabelAndEncodingAreComposite) {
  auto e = make_emitter("c_em8", "c_msg8");
  auto l = make_listener("c_li8", "c_msg8");
  auto c = compose(e, l);
  const State q0 = c->start_state();
  EXPECT_EQ(c->state_label(q0), "(ready, idle)");
  // Encoding is the pairing of the component encodings.
  const BitString expected = BitString::pack(
      {e->encode_state(e->start_state()), l->encode_state(l->start_state())});
  EXPECT_EQ(c->encode_state(q0), expected);
}

TEST(Compose, ThreeWayAssociativeBehavior) {
  // (coin || channel || listener): flip and route a message; exercise
  // n-ary composition and projections.
  auto coin = make_coin("c_t9", Rational(1, 2));
  auto ch = make_channel("c_t9");
  auto li = make_listener("c_li9", "recv0_c_t9");
  auto c = compose(coin, ch, li);
  const Signature sig = c->signature(c->start_state());
  EXPECT_TRUE(sig.is_input(act("flip_c_t9")));
  EXPECT_TRUE(sig.is_input(act("send0_c_t9")));
  const StateDist d = c->transition(c->start_state(), act("send0_c_t9"));
  ASSERT_EQ(d.support_size(), 1u);
  const Signature sig2 = c->signature(d.support()[0]);
  EXPECT_TRUE(sig2.is_output(act("recv0_c_t9")));
}

TEST(Compose, InternTupleIsStable) {
  auto e = make_emitter("c_em10", "c_msg10");
  auto l = make_listener("c_li10", "c_msg10");
  auto c = compose(e, l);
  const State q0 = c->start_state();
  EXPECT_EQ(c->intern_tuple({e->start_state(), l->start_state()}), q0);
  EXPECT_EQ(c->tuple(q0).size(), 2u);
  EXPECT_THROW(c->tuple(9999), std::out_of_range);
}

}  // namespace
}  // namespace cdse
