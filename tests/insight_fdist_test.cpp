// Insight functions, f-dist and balance (sched/insight.hpp,
// impl/balance.hpp; Defs 3.4-3.7).

#include <gtest/gtest.h>

#include "impl/balance.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_listener;

TEST(Insights, TraceInsightReportsExternalTrace) {
  auto coin = make_coin("ins_a", Rational(1, 2));
  UniformScheduler sched(3);
  TraceInsight f;
  const auto dist = exact_fdist(*coin, sched, f, 10);
  EXPECT_FALSE(dist.mass("flip_ins_a.head_ins_a").is_zero());
  // The internal toss never appears in any perception.
  for (const auto& [perc, w] : dist.entries()) {
    (void)w;
    EXPECT_EQ(perc.find("toss"), std::string::npos) << perc;
  }
}

TEST(Insights, AcceptInsightFlagsDesignatedAction) {
  auto b = make_bernoulli("ins_b", "ins_go_b", "ins_y_b", "ins_n_b",
                          Rational(1, 4));
  UniformScheduler sched(2);
  AcceptInsight f(act("ins_y_b"));
  const auto dist = exact_fdist(*b, sched, f, 10);
  EXPECT_EQ(dist.mass("1"), Rational(1, 4));
  EXPECT_EQ(dist.mass("0"), Rational(3, 4));
}

TEST(Insights, PrintInsightRestrictsToDesignatedSet) {
  auto coin = make_coin("ins_c", Rational(1, 2));
  UniformScheduler sched(3);
  PrintInsight f(acts({"head_ins_c", "tail_ins_c"}));
  const auto dist = exact_fdist(*coin, sched, f, 10);
  // flip is filtered out; only the outcome prints.
  EXPECT_EQ(dist.mass("head_ins_c"), Rational(1, 2));
  EXPECT_EQ(dist.mass("tail_ins_c"), Rational(1, 2));
}

TEST(Balance, CoinsWithSameBiasAreZeroBalanced) {
  auto c1 = make_coin("ins_d1", Rational(1, 3));
  auto c2 = make_coin("ins_d2", Rational(1, 3));
  // Rename-free comparison: drive each alone with equivalent schedulers.
  SequenceScheduler s1({act("flip_ins_d1"), act("toss_ins_d1"),
                        act("head_ins_d1")});
  SequenceScheduler s2({act("flip_ins_d2"), act("toss_ins_d2"),
                        act("head_ins_d2")});
  PrintInsight f1(acts({"head_ins_d1"}));
  // Perceptions must live in one space: print only the head actions and
  // rename mentally -- use accept on head instead for a shared space.
  AcceptInsight fa1(act("head_ins_d1"));
  AcceptInsight fa2(act("head_ins_d2"));
  const auto d1 = exact_fdist(*c1, s1, fa1, 10);
  const auto d2 = exact_fdist(*c2, s2, fa2, 10);
  EXPECT_EQ(balance_distance(d1, d2), Rational(0));
}

TEST(Balance, ExactEpsilonEqualsBiasDifference) {
  // TV between a p-coin and a q-coin observed through accept-on-yes is
  // |p - q|.
  auto b1 = make_bernoulli("ins_e1", "ins_go_e", "ins_y_e", "ins_n_e",
                           Rational(1, 3));
  auto b2 = make_bernoulli("ins_e2", "ins_go_e", "ins_y_e", "ins_n_e",
                           Rational(1, 2));
  UniformScheduler sched(2);
  AcceptInsight f(act("ins_y_e"));
  const Rational eps =
      exact_balance_epsilon(*b1, sched, *b2, sched, f, 10);
  EXPECT_EQ(eps, Rational(1, 6));
  EXPECT_TRUE(balanced(*b1, sched, *b2, sched, f, 10, Rational(1, 6)));
  EXPECT_FALSE(balanced(*b1, sched, *b2, sched, f, 10, Rational(1, 7)));
}

TEST(Balance, StabilityByComposition) {
  // Def 3.7 instance: composing an unrelated context B onto both sides
  // must not increase the environment's distinguishing power when the
  // insight watches E-side actions only.
  auto b1 = make_bernoulli("ins_f1", "ins_go_f", "ins_y_f", "ins_n_f",
                           Rational(1, 4));
  auto b2 = make_bernoulli("ins_f2", "ins_go_f", "ins_y_f", "ins_n_f",
                           Rational(3, 4));
  auto ctx = [] { return make_coin("ins_f_ctx", Rational(1, 2)); };
  UniformScheduler sched(6);
  AcceptInsight f(act("ins_y_f"));
  const Rational base =
      exact_balance_epsilon(*b1, sched, *b2, sched, f, 12);
  auto l = compose(ctx(), b1);
  auto r = compose(ctx(), b2);
  const Rational composed =
      exact_balance_epsilon(*l, sched, *r, sched, f, 12);
  EXPECT_LE(composed, base);
}

TEST(Balance, SampledEpsilonTracksExact) {
  ThreadPool pool(4);
  AcceptInsight f(act("ins_y_g"));
  auto mk1 = [] {
    return make_bernoulli("ins_g1", "ins_go_g", "ins_y_g", "ins_n_g",
                          Rational(1, 4));
  };
  auto mk2 = [] {
    return make_bernoulli("ins_g2", "ins_go_g", "ins_y_g", "ins_n_g",
                          Rational(1, 2));
  };
  auto mks = [] { return std::make_shared<UniformScheduler>(2); };
  const SampledEpsilon se =
      sampled_balance_epsilon(mk1, mks, mk2, mks, f, 60000, 7, 10, pool);
  EXPECT_NEAR(se.estimate, 0.25, 0.02);
  EXPECT_GT(se.radius, 0.0);
}

TEST(Balance, ProbeEnvironmentDrivesDistinguishing) {
  // Probe env: inject go, watch yes, accept. epsilon(E||A, E||B) == |p-q|.
  auto mk_env = [] {
    return make_probe_env_matching("ins_h_env", {act("ins_go_h")},
                                   acts({"ins_n_h"}), act("ins_y_h"),
                                   act("ins_acc_h"));
  };
  auto b1 = make_bernoulli("ins_h1", "ins_go_h", "ins_y_h", "ins_n_h",
                           Rational(1, 8));
  auto b2 = make_bernoulli("ins_h2", "ins_go_h", "ins_y_h", "ins_n_h",
                           Rational(5, 8));
  auto l = compose(mk_env(), b1);
  auto r = compose(mk_env(), b2);
  // Closed system: schedule locally controlled actions only, so the
  // probe's always-open watch inputs cannot fire as ghost stimuli.
  UniformScheduler sched(8, /*local_only=*/true);
  AcceptInsight f(act("ins_acc_h"));
  const Rational eps = exact_balance_epsilon(*l, sched, *r, sched, f, 10);
  EXPECT_EQ(eps, Rational(1, 2));
}

}  // namespace
}  // namespace cdse
