// Fault-injection adapters (src/fault): FaultPlan validation, the
// loss/duplication/delay wrapper, crash-stop as PCA destruction, the
// Byzantine corruption wrapper, scheduler perturbation, and the guarded
// sampler the fault sweeps run on.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "fault/byzantine.hpp"
#include "fault/crash.hpp"
#include "fault/faulty.hpp"
#include "fault/plan.hpp"
#include "pca/check.hpp"
#include "protocols/channel.hpp"
#include "psioa/explicit_psioa.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

// ---------------------------------------------------------------- plan

TEST(FaultPlan, ValidateRejectsBadRates) {
  FaultPlan p;
  p.drop = Rational(3, 2);
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.drop = Rational(-1, 2);
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.drop = Rational(1, 2);
  p.duplicate = Rational(1, 3);
  p.delay = Rational(1, 4);  // sums to 13/12 > 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.delay = Rational(1, 6);  // sums exactly to 1: allowed
  EXPECT_NO_THROW(p.validate());
}

TEST(FaultPlan, FaultFreeAndShorthands) {
  EXPECT_TRUE(FaultPlan::none().fault_free());
  EXPECT_FALSE(FaultPlan::lossy(Rational(1, 4)).fault_free());
  EXPECT_TRUE(FaultPlan::lossy(Rational(0)).fault_free());
  EXPECT_FALSE(FaultPlan::fail_stop(3).fault_free());
  EXPECT_TRUE(FaultPlan::fail_stop(3).crashes());
  EXPECT_FALSE(FaultPlan::none().crashes());
}

// -------------------------------------------------------------- faulty

TEST(Faulty, DropZeroIsTraceIdentical) {
  // The fault-free wrapper's f-dist over full traces equals the inner
  // automaton's under the same scheduler.
  auto plain = make_channel("ff");
  auto wrapped = inject_faults(make_channel("ff"), FaultPlan::none(),
                               acts({"send0_ff", "send1_ff"}), "ff");
  UniformScheduler s1(6), s2(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*plain, s1, f, 10), exact_fdist(*wrapped, s2, f, 10));
}

TEST(Faulty, DropMatchesLossyChannel) {
  // Receiver-side drop p on the reliable channel == the seed repo's
  // send-time lossy channel with deliver probability 1 - p.
  const Rational p(1, 3);
  auto faulty = make_faulty_channel("fl", FaultPlan::lossy(p));
  auto lossy = make_lossy_channel("fl", Rational(1) - p);
  UniformScheduler s1(6), s2(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*faulty, s1, f, 10), exact_fdist(*lossy, s2, f, 10));
}

TEST(Faulty, DropLosesTheMessage) {
  auto faulty = make_faulty_channel("fd", FaultPlan::lossy(Rational(1, 4)));
  SequenceScheduler sched({act("send0_fd"), act("recv0_fd")});
  // Delivery requires the inner channel to have advanced: 3/4.
  EXPECT_EQ(exact_action_probability(*faulty, sched, act("recv0_fd"), 10),
            Rational(3, 4));
}

/// Two-increment counter: `inc` stays enabled after the first firing, so
/// duplication is observable (the channel disables `send` after one).
PsioaPtr make_two_counter(const std::string& tag) {
  auto a = std::make_shared<ExplicitPsioa>("counter_" + tag);
  const ActionId inc = act("inc_" + tag);
  const ActionId done = act("done_" + tag);
  const State c0 = a->add_state("c0");
  const State c1 = a->add_state("c1");
  const State c2 = a->add_state("c2");
  a->set_start(c0);
  Signature counting;
  counting.in = ActionSet{inc};
  a->set_signature(c0, counting);
  a->set_signature(c1, counting);
  Signature full;
  full.out = ActionSet{done};
  a->set_signature(c2, full);
  a->add_step(c0, inc, c1);
  a->add_step(c1, inc, c2);
  a->add_step(c2, done, c2);
  a->validate();
  return a;
}

TEST(Faulty, DuplicateAppliesTwiceWhileEnabled) {
  FaultPlan p;
  p.duplicate = Rational(1, 2);
  auto dup = inject_faults(make_two_counter("dp"), p,
                           ActionSet{act("inc_dp")}, "dp");
  // One scheduled inc: duplicated with prob 1/2, so the counter reaches
  // c2 (done enabled) with prob 1/2 after a single firing.
  SequenceScheduler sched({act("inc_dp"), act("done_dp")});
  EXPECT_EQ(exact_action_probability(*dup, sched, act("done_dp"), 10),
            Rational(1, 2));
}

TEST(Faulty, DuplicateDegradesToSingleWhenDisabled) {
  // On the 1-slot channel `send0` is disabled after one firing, so the
  // second application never happens: duplication is unobservable and the
  // wrapper stays trace-identical to the plain channel.
  FaultPlan p;
  p.duplicate = Rational(1, 2);
  auto dup = make_faulty_channel("du", p);
  auto plain = make_channel("du");
  UniformScheduler s1(6), s2(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*dup, s1, f, 10), exact_fdist(*plain, s2, f, 10));
}

TEST(Faulty, DelayHoldsUntilInternalDelivery) {
  FaultPlan p;
  p.delay = Rational(1);
  auto del = inject_faults(make_channel("dl"), p,
                           ActionSet{act("send0_dl")}, "dl");
  const State q0 = del->start_state();
  // send0 moves to the held state whose only action is internal delivery.
  const StateDist eta = del->transition(q0, act("send0_dl"));
  ASSERT_EQ(eta.support_size(), 1u);
  const State held = eta.support().front();
  const Signature sig = del->signature(held);
  EXPECT_TRUE(sig.in.empty());
  EXPECT_TRUE(sig.out.empty());
  EXPECT_EQ(sig.internal, ActionSet{act("faultdeliver_dl")});
  // Delivery applies the held send: recv0 becomes enabled.
  const StateDist after = del->transition(held, act("faultdeliver_dl"));
  ASSERT_EQ(after.support_size(), 1u);
  EXPECT_TRUE(
      del->signature(after.support().front()).contains(act("recv0_dl")));
  // End to end: the message arrives one internal step later.
  SequenceScheduler sched(
      {act("send0_dl"), act("faultdeliver_dl"), act("recv0_dl")});
  EXPECT_EQ(exact_action_probability(*del, sched, act("recv0_dl"), 10),
            Rational(1));
}

TEST(Faulty, RejectsInvalidPlan) {
  FaultPlan bad;
  bad.drop = Rational(2);
  EXPECT_THROW(
      inject_faults(make_channel("iv"), bad, ActionSet{act("send0_iv")},
                    "iv"),
      std::invalid_argument);
}

// --------------------------------------------------------------- crash

TEST(Crash, WrapperForwardsUntilBudgetThenGoesSilent) {
  auto c = make_crashable(make_channel("cr"), 1);
  const State q0 = c->start_state();
  EXPECT_EQ(c->signature(q0), make_channel("cr")->signature(
                                  make_channel("cr")->start_state()));
  const StateDist eta = c->transition(q0, act("send0_cr"));
  ASSERT_EQ(eta.support_size(), 1u);
  // Budget spent: the reached state has the empty signature (the Def 2.12
  // destruction sentinel).
  EXPECT_TRUE(c->signature(eta.support().front()).empty());
}

TEST(Crash, PcaPassesConstraintsAndDestructionEmptiesConfig) {
  auto registry = std::make_shared<AutomatonRegistry>();
  PcaPtr pca = make_crash_stop_pca("crashpca", registry,
                                   make_channel("cp"), 2);
  const PcaCheckResult res = check_pca_constraints(*pca, 6);
  EXPECT_TRUE(bool(res)) << res.violation;

  // Walk two transitions: send0 then recv0 exhausts the budget, and the
  // crash surfaces as an intrinsic destruction -- the configuration
  // reduces to empty, hence the PCA state's signature is empty.
  State q = pca->start_state();
  EXPECT_EQ(pca->config(q).size(), 1u);
  q = pca->transition(q, act("send0_cp")).support().front();
  EXPECT_EQ(pca->config(q).size(), 1u);
  q = pca->transition(q, act("recv0_cp")).support().front();
  EXPECT_TRUE(pca->config(q).is_empty());
  EXPECT_TRUE(pca->signature(q).empty());
}

TEST(Crash, NeverCrashIsTraceIdentical) {
  auto plain = make_channel("cn");
  auto wrapped = make_crashable(make_channel("cn"), FaultPlan::kNeverCrash);
  UniformScheduler s1(6), s2(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*plain, s1, f, 10), exact_fdist(*wrapped, s2, f, 10));
}

TEST(Crash, ImmediateCrashPcaRejected) {
  // crash_after == 0 would make the *initial* configuration unreduced,
  // violating Def 2.16 constraint 1.
  auto registry = std::make_shared<AutomatonRegistry>();
  EXPECT_THROW(
      make_crash_stop_pca("crash0", registry, make_channel("c0"), 0),
      std::invalid_argument);
}

// ----------------------------------------------------------- byzantine

TEST(Byzantine, FlipInvolutionValidated) {
  const ActionBijection g =
      make_flip_involution({{act("x0"), act("x1")}});
  EXPECT_EQ(g.apply(act("x0")), act("x1"));
  EXPECT_EQ(g.apply(act("x1")), act("x0"));
  EXPECT_THROW(make_flip_involution({{act("x0"), act("x0")}}),
               std::invalid_argument);
}

TEST(Byzantine, LiesWithExactlyTheCorruptionRate) {
  // Corrupt the channel's receive side: a held 0 is reported as recv1
  // exactly when the post-send state drew the lying mode -- rate 1/3.
  const Rational rho(1, 3);
  auto byz = std::make_shared<ByzantinePsioa>(
      make_channel("bz"),
      make_flip_involution({{act("recv0_bz"), act("recv1_bz")}}), rho);
  SequenceScheduler honest({act("send0_bz"), act("recv0_bz")});
  SequenceScheduler lying({act("send0_bz"), act("recv1_bz")});
  EXPECT_EQ(exact_action_probability(*byz, honest, act("recv0_bz"), 10),
            Rational(1) - rho);
  EXPECT_EQ(exact_action_probability(*byz, lying, act("recv1_bz"), 10),
            rho);
}

TEST(Byzantine, RateZeroIsTraceIdentical) {
  auto plain = make_channel("bh");
  auto byz = std::make_shared<ByzantinePsioa>(
      make_channel("bh"),
      make_flip_involution({{act("recv0_bh"), act("recv1_bh")}}),
      Rational(0));
  UniformScheduler s1(6), s2(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*plain, s1, f, 10), exact_fdist(*byz, s2, f, 10));
}

TEST(Byzantine, CorruptStructuredKeepsVocabularies) {
  StructuredPsioa chan(make_channel("bs"),
                       acts({"recv0_bs", "recv1_bs"}),
                       acts({"send0_bs", "send1_bs"}), ActionSet{});
  const StructuredPsioa corrupted = corrupt_structured(
      chan, {{act("recv0_bs"), act("recv1_bs")}}, Rational(1, 4));
  EXPECT_EQ(corrupted.env_vocab(), chan.env_vocab());
  EXPECT_EQ(corrupted.adv_in_vocab(), chan.adv_in_vocab());
  EXPECT_EQ(corrupted.adv_out_vocab(), chan.adv_out_vocab());
}

TEST(Byzantine, CorruptStructuredRejectsCrossClassFlips) {
  StructuredPsioa chan(make_channel("bx"),
                       acts({"recv0_bx", "recv1_bx"}),
                       acts({"send0_bx", "send1_bx"}), ActionSet{});
  // send0 is an adversary input, recv0 an environment action: a corrupted
  // party cannot swap actions across the interface partition.
  EXPECT_THROW(
      corrupt_structured(chan, {{act("send0_bx"), act("recv0_bx")}},
                         Rational(1, 4)),
      std::invalid_argument);
}

// ----------------------------------------------------------- scheduler

TEST(Perturbed, RateZeroIsInnerVerbatim) {
  auto inner = std::make_shared<UniformScheduler>(6);
  PerturbedScheduler pert(inner, Rational(0));
  auto c1 = make_channel("p0");
  auto c2 = make_channel("p0");
  UniformScheduler plain(6);
  TraceInsight f;
  EXPECT_EQ(exact_fdist(*c1, pert, f, 10), exact_fdist(*c2, plain, f, 10));
}

TEST(Perturbed, MeasureStaysProbability) {
  auto inner = std::make_shared<UniformScheduler>(6);
  PerturbedScheduler pert(inner, Rational(1, 3), /*local_only=*/false);
  auto chan = make_channel("p1");
  Rational total;
  for_each_halted_execution(*chan, pert, 10,
                            [&](const ExecFragment&, const Rational& w) {
                              total += w;
                            });
  EXPECT_EQ(total, Rational(1));
}

TEST(Perturbed, RejectsRateOutsideUnitInterval) {
  auto inner = std::make_shared<UniformScheduler>(4);
  EXPECT_THROW(PerturbedScheduler(inner, Rational(3, 2)),
               std::invalid_argument);
}

// ------------------------------------------------------ guarded sampler

TEST(GuardedSampler, CompleteRunMatchesUnguarded) {
  ThreadPool pool(2);
  auto factory = [] { return make_lossy_channel("gs", Rational(1, 2)); };
  auto sched_factory = [] {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;
  SampleGuard guard;  // no deadline, no retries
  SampleReport rep;
  const auto guarded = guarded_parallel_sample_fdist(
      factory, sched_factory, f, 4000, 11, 10, pool, guard, &rep);
  const auto plain = parallel_sample_fdist(factory, sched_factory, f, 4000,
                                           11, 10, pool);
  EXPECT_TRUE(rep.complete);
  EXPECT_TRUE(bool(rep));
  EXPECT_FALSE(rep.deadline_hit);
  EXPECT_EQ(rep.trials_done, 4000u);
  EXPECT_EQ(rep.retries_used, 0u);
  EXPECT_EQ(guarded, plain);  // same seed, same chunking, same estimate
}

TEST(GuardedSampler, DeadlineYieldsPartialNormalizedEstimate) {
  ThreadPool pool(2);
  auto factory = [] { return make_lossy_channel("gd", Rational(1, 2)); };
  auto sched_factory = [] {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;
  SampleGuard guard;
  guard.deadline = std::chrono::milliseconds(1);
  SampleReport rep;
  const auto dist = guarded_parallel_sample_fdist(
      factory, sched_factory, f, 100'000'000, 11, 10, pool, guard, &rep);
  EXPECT_TRUE(rep.deadline_hit);
  EXPECT_FALSE(rep.complete);
  EXPECT_GT(rep.trials_done, 0u);
  EXPECT_LT(rep.trials_done, rep.trials_requested);
  // Partial but still a probability distribution over perceptions.
  EXPECT_TRUE(dist.is_probability(1e-9));
}

TEST(GuardedSampler, RetryWithSeedRotationRecovers) {
  // Single-worker pool => one chunk: the first attempt throws, the retry
  // (on a rotated seed stream) succeeds, and the run completes.
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  auto factory = [&calls]() -> PsioaPtr {
    if (calls.fetch_add(1) == 0) {
      throw std::runtime_error("transient construction failure");
    }
    return make_lossy_channel("gr", Rational(1, 2));
  };
  auto sched_factory = [] {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;
  SampleGuard guard;
  guard.max_retries = 2;
  SampleReport rep;
  const auto dist = guarded_parallel_sample_fdist(
      factory, sched_factory, f, 500, 11, 10, pool, guard, &rep);
  EXPECT_TRUE(rep.complete);
  EXPECT_EQ(rep.trials_done, 500u);
  EXPECT_EQ(rep.retries_used, 1u);
  EXPECT_GE(calls.load(), 2);
  EXPECT_TRUE(dist.is_probability(1e-9));
}

TEST(GuardedSampler, ExhaustedRetriesReportCleanFailure) {
  ThreadPool pool(1);
  auto factory = []() -> PsioaPtr {
    throw std::runtime_error("persistent failure");
  };
  auto sched_factory = [] {
    return std::make_shared<UniformScheduler>(6);
  };
  TraceInsight f;
  SampleGuard guard;
  guard.max_retries = 3;
  SampleReport rep;
  const auto dist = guarded_parallel_sample_fdist(
      factory, sched_factory, f, 500, 11, 10, pool, guard, &rep);
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.trials_done, 0u);
  EXPECT_EQ(rep.retries_used, 3u);
  EXPECT_NE(rep.error.find("persistent failure"), std::string::npos);
  EXPECT_TRUE(dist.empty());
}

}  // namespace
}  // namespace cdse
