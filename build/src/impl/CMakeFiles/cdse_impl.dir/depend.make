# Empty dependencies file for cdse_impl.
# This may be replaced when dependencies are built.
