
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impl/balance.cpp" "src/impl/CMakeFiles/cdse_impl.dir/balance.cpp.o" "gcc" "src/impl/CMakeFiles/cdse_impl.dir/balance.cpp.o.d"
  "/root/repo/src/impl/bisim.cpp" "src/impl/CMakeFiles/cdse_impl.dir/bisim.cpp.o" "gcc" "src/impl/CMakeFiles/cdse_impl.dir/bisim.cpp.o.d"
  "/root/repo/src/impl/family_sweep.cpp" "src/impl/CMakeFiles/cdse_impl.dir/family_sweep.cpp.o" "gcc" "src/impl/CMakeFiles/cdse_impl.dir/family_sweep.cpp.o.d"
  "/root/repo/src/impl/implementation.cpp" "src/impl/CMakeFiles/cdse_impl.dir/implementation.cpp.o" "gcc" "src/impl/CMakeFiles/cdse_impl.dir/implementation.cpp.o.d"
  "/root/repo/src/impl/optimal.cpp" "src/impl/CMakeFiles/cdse_impl.dir/optimal.cpp.o" "gcc" "src/impl/CMakeFiles/cdse_impl.dir/optimal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/cdse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bounded/CMakeFiles/cdse_bounded.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/cdse_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/psioa/CMakeFiles/cdse_psioa.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
