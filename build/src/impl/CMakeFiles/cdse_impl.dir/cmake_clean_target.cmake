file(REMOVE_RECURSE
  "libcdse_impl.a"
)
