file(REMOVE_RECURSE
  "CMakeFiles/cdse_impl.dir/balance.cpp.o"
  "CMakeFiles/cdse_impl.dir/balance.cpp.o.d"
  "CMakeFiles/cdse_impl.dir/bisim.cpp.o"
  "CMakeFiles/cdse_impl.dir/bisim.cpp.o.d"
  "CMakeFiles/cdse_impl.dir/family_sweep.cpp.o"
  "CMakeFiles/cdse_impl.dir/family_sweep.cpp.o.d"
  "CMakeFiles/cdse_impl.dir/implementation.cpp.o"
  "CMakeFiles/cdse_impl.dir/implementation.cpp.o.d"
  "CMakeFiles/cdse_impl.dir/optimal.cpp.o"
  "CMakeFiles/cdse_impl.dir/optimal.cpp.o.d"
  "libcdse_impl.a"
  "libcdse_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
