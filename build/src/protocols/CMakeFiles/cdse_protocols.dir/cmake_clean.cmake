file(REMOVE_RECURSE
  "CMakeFiles/cdse_protocols.dir/backbone.cpp.o"
  "CMakeFiles/cdse_protocols.dir/backbone.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/broadcast.cpp.o"
  "CMakeFiles/cdse_protocols.dir/broadcast.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/channel.cpp.o"
  "CMakeFiles/cdse_protocols.dir/channel.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/coinflip.cpp.o"
  "CMakeFiles/cdse_protocols.dir/coinflip.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/cointoss.cpp.o"
  "CMakeFiles/cdse_protocols.dir/cointoss.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/consensus.cpp.o"
  "CMakeFiles/cdse_protocols.dir/consensus.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/environment.cpp.o"
  "CMakeFiles/cdse_protocols.dir/environment.cpp.o.d"
  "CMakeFiles/cdse_protocols.dir/ledger.cpp.o"
  "CMakeFiles/cdse_protocols.dir/ledger.cpp.o.d"
  "libcdse_protocols.a"
  "libcdse_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
