# Empty compiler generated dependencies file for cdse_protocols.
# This may be replaced when dependencies are built.
