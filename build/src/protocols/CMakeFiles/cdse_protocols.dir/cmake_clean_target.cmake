file(REMOVE_RECURSE
  "libcdse_protocols.a"
)
