
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/backbone.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/backbone.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/backbone.cpp.o.d"
  "/root/repo/src/protocols/broadcast.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/broadcast.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/broadcast.cpp.o.d"
  "/root/repo/src/protocols/channel.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/channel.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/channel.cpp.o.d"
  "/root/repo/src/protocols/coinflip.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/coinflip.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/coinflip.cpp.o.d"
  "/root/repo/src/protocols/cointoss.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/cointoss.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/cointoss.cpp.o.d"
  "/root/repo/src/protocols/consensus.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/consensus.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/consensus.cpp.o.d"
  "/root/repo/src/protocols/environment.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/environment.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/environment.cpp.o.d"
  "/root/repo/src/protocols/ledger.cpp" "src/protocols/CMakeFiles/cdse_protocols.dir/ledger.cpp.o" "gcc" "src/protocols/CMakeFiles/cdse_protocols.dir/ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/secure/CMakeFiles/cdse_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/cdse_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cdse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/impl/CMakeFiles/cdse_impl.dir/DependInfo.cmake"
  "/root/repo/build/src/bounded/CMakeFiles/cdse_bounded.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cdse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/psioa/CMakeFiles/cdse_psioa.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
