# Empty dependencies file for cdse_util.
# This may be replaced when dependencies are built.
