
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitstring.cpp" "src/util/CMakeFiles/cdse_util.dir/bitstring.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/bitstring.cpp.o.d"
  "/root/repo/src/util/interner.cpp" "src/util/CMakeFiles/cdse_util.dir/interner.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/interner.cpp.o.d"
  "/root/repo/src/util/poly.cpp" "src/util/CMakeFiles/cdse_util.dir/poly.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/poly.cpp.o.d"
  "/root/repo/src/util/rational.cpp" "src/util/CMakeFiles/cdse_util.dir/rational.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/rational.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/cdse_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/sorted_set.cpp" "src/util/CMakeFiles/cdse_util.dir/sorted_set.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/sorted_set.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/cdse_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/cdse_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/cdse_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
