file(REMOVE_RECURSE
  "CMakeFiles/cdse_util.dir/bitstring.cpp.o"
  "CMakeFiles/cdse_util.dir/bitstring.cpp.o.d"
  "CMakeFiles/cdse_util.dir/interner.cpp.o"
  "CMakeFiles/cdse_util.dir/interner.cpp.o.d"
  "CMakeFiles/cdse_util.dir/poly.cpp.o"
  "CMakeFiles/cdse_util.dir/poly.cpp.o.d"
  "CMakeFiles/cdse_util.dir/rational.cpp.o"
  "CMakeFiles/cdse_util.dir/rational.cpp.o.d"
  "CMakeFiles/cdse_util.dir/rng.cpp.o"
  "CMakeFiles/cdse_util.dir/rng.cpp.o.d"
  "CMakeFiles/cdse_util.dir/sorted_set.cpp.o"
  "CMakeFiles/cdse_util.dir/sorted_set.cpp.o.d"
  "CMakeFiles/cdse_util.dir/stats.cpp.o"
  "CMakeFiles/cdse_util.dir/stats.cpp.o.d"
  "CMakeFiles/cdse_util.dir/thread_pool.cpp.o"
  "CMakeFiles/cdse_util.dir/thread_pool.cpp.o.d"
  "libcdse_util.a"
  "libcdse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
