file(REMOVE_RECURSE
  "libcdse_util.a"
)
