file(REMOVE_RECURSE
  "libcdse_measure.a"
)
