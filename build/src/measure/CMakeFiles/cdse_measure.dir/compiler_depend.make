# Empty compiler generated dependencies file for cdse_measure.
# This may be replaced when dependencies are built.
