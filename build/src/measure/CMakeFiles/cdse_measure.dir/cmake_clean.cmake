file(REMOVE_RECURSE
  "CMakeFiles/cdse_measure.dir/disc.cpp.o"
  "CMakeFiles/cdse_measure.dir/disc.cpp.o.d"
  "libcdse_measure.a"
  "libcdse_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
