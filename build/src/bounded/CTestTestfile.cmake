# CMake generated Testfile for 
# Source directory: /root/repo/src/bounded
# Build directory: /root/repo/build/src/bounded
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
