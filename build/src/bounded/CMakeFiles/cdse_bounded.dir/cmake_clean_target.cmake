file(REMOVE_RECURSE
  "libcdse_bounded.a"
)
