file(REMOVE_RECURSE
  "CMakeFiles/cdse_bounded.dir/cost.cpp.o"
  "CMakeFiles/cdse_bounded.dir/cost.cpp.o.d"
  "CMakeFiles/cdse_bounded.dir/family.cpp.o"
  "CMakeFiles/cdse_bounded.dir/family.cpp.o.d"
  "libcdse_bounded.a"
  "libcdse_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
