# Empty dependencies file for cdse_bounded.
# This may be replaced when dependencies are built.
