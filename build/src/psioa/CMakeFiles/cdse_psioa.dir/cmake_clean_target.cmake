file(REMOVE_RECURSE
  "libcdse_psioa.a"
)
