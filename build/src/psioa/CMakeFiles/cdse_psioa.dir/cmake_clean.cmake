file(REMOVE_RECURSE
  "CMakeFiles/cdse_psioa.dir/action.cpp.o"
  "CMakeFiles/cdse_psioa.dir/action.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/compose.cpp.o"
  "CMakeFiles/cdse_psioa.dir/compose.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/execution.cpp.o"
  "CMakeFiles/cdse_psioa.dir/execution.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/explicit_psioa.cpp.o"
  "CMakeFiles/cdse_psioa.dir/explicit_psioa.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/export.cpp.o"
  "CMakeFiles/cdse_psioa.dir/export.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/hide.cpp.o"
  "CMakeFiles/cdse_psioa.dir/hide.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/psioa.cpp.o"
  "CMakeFiles/cdse_psioa.dir/psioa.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/random.cpp.o"
  "CMakeFiles/cdse_psioa.dir/random.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/rename.cpp.o"
  "CMakeFiles/cdse_psioa.dir/rename.cpp.o.d"
  "CMakeFiles/cdse_psioa.dir/signature.cpp.o"
  "CMakeFiles/cdse_psioa.dir/signature.cpp.o.d"
  "libcdse_psioa.a"
  "libcdse_psioa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_psioa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
