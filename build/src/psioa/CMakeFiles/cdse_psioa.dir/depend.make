# Empty dependencies file for cdse_psioa.
# This may be replaced when dependencies are built.
