
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psioa/action.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/action.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/action.cpp.o.d"
  "/root/repo/src/psioa/compose.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/compose.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/compose.cpp.o.d"
  "/root/repo/src/psioa/execution.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/execution.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/execution.cpp.o.d"
  "/root/repo/src/psioa/explicit_psioa.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/explicit_psioa.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/explicit_psioa.cpp.o.d"
  "/root/repo/src/psioa/export.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/export.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/export.cpp.o.d"
  "/root/repo/src/psioa/hide.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/hide.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/hide.cpp.o.d"
  "/root/repo/src/psioa/psioa.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/psioa.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/psioa.cpp.o.d"
  "/root/repo/src/psioa/random.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/random.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/random.cpp.o.d"
  "/root/repo/src/psioa/rename.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/rename.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/rename.cpp.o.d"
  "/root/repo/src/psioa/signature.cpp" "src/psioa/CMakeFiles/cdse_psioa.dir/signature.cpp.o" "gcc" "src/psioa/CMakeFiles/cdse_psioa.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
