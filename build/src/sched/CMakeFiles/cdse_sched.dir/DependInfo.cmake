
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cone_measure.cpp" "src/sched/CMakeFiles/cdse_sched.dir/cone_measure.cpp.o" "gcc" "src/sched/CMakeFiles/cdse_sched.dir/cone_measure.cpp.o.d"
  "/root/repo/src/sched/insight.cpp" "src/sched/CMakeFiles/cdse_sched.dir/insight.cpp.o" "gcc" "src/sched/CMakeFiles/cdse_sched.dir/insight.cpp.o.d"
  "/root/repo/src/sched/sampler.cpp" "src/sched/CMakeFiles/cdse_sched.dir/sampler.cpp.o" "gcc" "src/sched/CMakeFiles/cdse_sched.dir/sampler.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/cdse_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/cdse_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/schedulers.cpp" "src/sched/CMakeFiles/cdse_sched.dir/schedulers.cpp.o" "gcc" "src/sched/CMakeFiles/cdse_sched.dir/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psioa/CMakeFiles/cdse_psioa.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/cdse_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
