file(REMOVE_RECURSE
  "CMakeFiles/cdse_sched.dir/cone_measure.cpp.o"
  "CMakeFiles/cdse_sched.dir/cone_measure.cpp.o.d"
  "CMakeFiles/cdse_sched.dir/insight.cpp.o"
  "CMakeFiles/cdse_sched.dir/insight.cpp.o.d"
  "CMakeFiles/cdse_sched.dir/sampler.cpp.o"
  "CMakeFiles/cdse_sched.dir/sampler.cpp.o.d"
  "CMakeFiles/cdse_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cdse_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/cdse_sched.dir/schedulers.cpp.o"
  "CMakeFiles/cdse_sched.dir/schedulers.cpp.o.d"
  "libcdse_sched.a"
  "libcdse_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
