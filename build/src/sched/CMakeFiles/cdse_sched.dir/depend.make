# Empty dependencies file for cdse_sched.
# This may be replaced when dependencies are built.
