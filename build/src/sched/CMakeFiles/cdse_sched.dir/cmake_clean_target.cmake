file(REMOVE_RECURSE
  "libcdse_sched.a"
)
