file(REMOVE_RECURSE
  "libcdse_pca.a"
)
