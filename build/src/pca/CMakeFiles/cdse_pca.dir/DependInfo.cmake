
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pca/check.cpp" "src/pca/CMakeFiles/cdse_pca.dir/check.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/check.cpp.o.d"
  "/root/repo/src/pca/configuration.cpp" "src/pca/CMakeFiles/cdse_pca.dir/configuration.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/configuration.cpp.o.d"
  "/root/repo/src/pca/dynamic_pca.cpp" "src/pca/CMakeFiles/cdse_pca.dir/dynamic_pca.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/dynamic_pca.cpp.o.d"
  "/root/repo/src/pca/pca.cpp" "src/pca/CMakeFiles/cdse_pca.dir/pca.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/pca.cpp.o.d"
  "/root/repo/src/pca/pca_compose.cpp" "src/pca/CMakeFiles/cdse_pca.dir/pca_compose.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/pca_compose.cpp.o.d"
  "/root/repo/src/pca/pca_hide.cpp" "src/pca/CMakeFiles/cdse_pca.dir/pca_hide.cpp.o" "gcc" "src/pca/CMakeFiles/cdse_pca.dir/pca_hide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psioa/CMakeFiles/cdse_psioa.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
