file(REMOVE_RECURSE
  "CMakeFiles/cdse_pca.dir/check.cpp.o"
  "CMakeFiles/cdse_pca.dir/check.cpp.o.d"
  "CMakeFiles/cdse_pca.dir/configuration.cpp.o"
  "CMakeFiles/cdse_pca.dir/configuration.cpp.o.d"
  "CMakeFiles/cdse_pca.dir/dynamic_pca.cpp.o"
  "CMakeFiles/cdse_pca.dir/dynamic_pca.cpp.o.d"
  "CMakeFiles/cdse_pca.dir/pca.cpp.o"
  "CMakeFiles/cdse_pca.dir/pca.cpp.o.d"
  "CMakeFiles/cdse_pca.dir/pca_compose.cpp.o"
  "CMakeFiles/cdse_pca.dir/pca_compose.cpp.o.d"
  "CMakeFiles/cdse_pca.dir/pca_hide.cpp.o"
  "CMakeFiles/cdse_pca.dir/pca_hide.cpp.o.d"
  "libcdse_pca.a"
  "libcdse_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
