# Empty dependencies file for cdse_pca.
# This may be replaced when dependencies are built.
