file(REMOVE_RECURSE
  "CMakeFiles/cdse_crypto.dir/pairs.cpp.o"
  "CMakeFiles/cdse_crypto.dir/pairs.cpp.o.d"
  "CMakeFiles/cdse_crypto.dir/prg.cpp.o"
  "CMakeFiles/cdse_crypto.dir/prg.cpp.o.d"
  "CMakeFiles/cdse_crypto.dir/relay.cpp.o"
  "CMakeFiles/cdse_crypto.dir/relay.cpp.o.d"
  "CMakeFiles/cdse_crypto.dir/service.cpp.o"
  "CMakeFiles/cdse_crypto.dir/service.cpp.o.d"
  "libcdse_crypto.a"
  "libcdse_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
