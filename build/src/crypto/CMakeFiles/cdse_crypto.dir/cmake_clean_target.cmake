file(REMOVE_RECURSE
  "libcdse_crypto.a"
)
