# Empty dependencies file for cdse_crypto.
# This may be replaced when dependencies are built.
