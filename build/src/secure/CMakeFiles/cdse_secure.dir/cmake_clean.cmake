file(REMOVE_RECURSE
  "CMakeFiles/cdse_secure.dir/adversary.cpp.o"
  "CMakeFiles/cdse_secure.dir/adversary.cpp.o.d"
  "CMakeFiles/cdse_secure.dir/dummy.cpp.o"
  "CMakeFiles/cdse_secure.dir/dummy.cpp.o.d"
  "CMakeFiles/cdse_secure.dir/emulation.cpp.o"
  "CMakeFiles/cdse_secure.dir/emulation.cpp.o.d"
  "CMakeFiles/cdse_secure.dir/forward.cpp.o"
  "CMakeFiles/cdse_secure.dir/forward.cpp.o.d"
  "CMakeFiles/cdse_secure.dir/structured.cpp.o"
  "CMakeFiles/cdse_secure.dir/structured.cpp.o.d"
  "libcdse_secure.a"
  "libcdse_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdse_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
