file(REMOVE_RECURSE
  "libcdse_secure.a"
)
