# Empty dependencies file for cdse_secure.
# This may be replaced when dependencies are built.
