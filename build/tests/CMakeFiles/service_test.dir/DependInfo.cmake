
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/service_test.cpp" "tests/CMakeFiles/service_test.dir/service_test.cpp.o" "gcc" "tests/CMakeFiles/service_test.dir/service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/cdse_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cdse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/cdse_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/impl/CMakeFiles/cdse_impl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cdse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bounded/CMakeFiles/cdse_bounded.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/cdse_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/psioa/CMakeFiles/cdse_psioa.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cdse_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
