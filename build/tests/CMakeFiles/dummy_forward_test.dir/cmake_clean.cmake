file(REMOVE_RECURSE
  "CMakeFiles/dummy_forward_test.dir/dummy_forward_test.cpp.o"
  "CMakeFiles/dummy_forward_test.dir/dummy_forward_test.cpp.o.d"
  "dummy_forward_test"
  "dummy_forward_test.pdb"
  "dummy_forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dummy_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
