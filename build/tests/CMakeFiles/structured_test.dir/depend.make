# Empty dependencies file for structured_test.
# This may be replaced when dependencies are built.
