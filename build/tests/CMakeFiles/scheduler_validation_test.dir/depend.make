# Empty dependencies file for scheduler_validation_test.
# This may be replaced when dependencies are built.
