file(REMOVE_RECURSE
  "CMakeFiles/scheduler_validation_test.dir/scheduler_validation_test.cpp.o"
  "CMakeFiles/scheduler_validation_test.dir/scheduler_validation_test.cpp.o.d"
  "scheduler_validation_test"
  "scheduler_validation_test.pdb"
  "scheduler_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
