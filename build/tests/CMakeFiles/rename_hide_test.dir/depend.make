# Empty dependencies file for rename_hide_test.
# This may be replaced when dependencies are built.
