file(REMOVE_RECURSE
  "CMakeFiles/rename_hide_test.dir/rename_hide_test.cpp.o"
  "CMakeFiles/rename_hide_test.dir/rename_hide_test.cpp.o.d"
  "rename_hide_test"
  "rename_hide_test.pdb"
  "rename_hide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_hide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
