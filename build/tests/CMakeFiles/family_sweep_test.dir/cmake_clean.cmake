file(REMOVE_RECURSE
  "CMakeFiles/family_sweep_test.dir/family_sweep_test.cpp.o"
  "CMakeFiles/family_sweep_test.dir/family_sweep_test.cpp.o.d"
  "family_sweep_test"
  "family_sweep_test.pdb"
  "family_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
