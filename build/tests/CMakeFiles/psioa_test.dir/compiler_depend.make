# Empty compiler generated dependencies file for psioa_test.
# This may be replaced when dependencies are built.
