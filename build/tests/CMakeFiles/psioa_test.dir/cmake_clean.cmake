file(REMOVE_RECURSE
  "CMakeFiles/psioa_test.dir/psioa_test.cpp.o"
  "CMakeFiles/psioa_test.dir/psioa_test.cpp.o.d"
  "psioa_test"
  "psioa_test.pdb"
  "psioa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psioa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
