file(REMOVE_RECURSE
  "CMakeFiles/cointoss_test.dir/cointoss_test.cpp.o"
  "CMakeFiles/cointoss_test.dir/cointoss_test.cpp.o.d"
  "cointoss_test"
  "cointoss_test.pdb"
  "cointoss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cointoss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
