# Empty compiler generated dependencies file for cointoss_test.
# This may be replaced when dependencies are built.
