file(REMOVE_RECURSE
  "CMakeFiles/backbone_test.dir/backbone_test.cpp.o"
  "CMakeFiles/backbone_test.dir/backbone_test.cpp.o.d"
  "backbone_test"
  "backbone_test.pdb"
  "backbone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
