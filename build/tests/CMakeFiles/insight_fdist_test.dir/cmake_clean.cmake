file(REMOVE_RECURSE
  "CMakeFiles/insight_fdist_test.dir/insight_fdist_test.cpp.o"
  "CMakeFiles/insight_fdist_test.dir/insight_fdist_test.cpp.o.d"
  "insight_fdist_test"
  "insight_fdist_test.pdb"
  "insight_fdist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_fdist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
