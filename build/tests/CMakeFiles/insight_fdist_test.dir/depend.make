# Empty dependencies file for insight_fdist_test.
# This may be replaced when dependencies are built.
