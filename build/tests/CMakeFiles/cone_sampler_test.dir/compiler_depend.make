# Empty compiler generated dependencies file for cone_sampler_test.
# This may be replaced when dependencies are built.
