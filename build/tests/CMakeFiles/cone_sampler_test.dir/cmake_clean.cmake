file(REMOVE_RECURSE
  "CMakeFiles/cone_sampler_test.dir/cone_sampler_test.cpp.o"
  "CMakeFiles/cone_sampler_test.dir/cone_sampler_test.cpp.o.d"
  "cone_sampler_test"
  "cone_sampler_test.pdb"
  "cone_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cone_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
