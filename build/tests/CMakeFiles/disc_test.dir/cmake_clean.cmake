file(REMOVE_RECURSE
  "CMakeFiles/disc_test.dir/disc_test.cpp.o"
  "CMakeFiles/disc_test.dir/disc_test.cpp.o.d"
  "disc_test"
  "disc_test.pdb"
  "disc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
