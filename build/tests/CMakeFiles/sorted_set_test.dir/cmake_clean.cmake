file(REMOVE_RECURSE
  "CMakeFiles/sorted_set_test.dir/sorted_set_test.cpp.o"
  "CMakeFiles/sorted_set_test.dir/sorted_set_test.cpp.o.d"
  "sorted_set_test"
  "sorted_set_test.pdb"
  "sorted_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorted_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
