# Empty compiler generated dependencies file for sorted_set_test.
# This may be replaced when dependencies are built.
