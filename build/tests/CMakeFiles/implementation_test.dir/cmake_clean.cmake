file(REMOVE_RECURSE
  "CMakeFiles/implementation_test.dir/implementation_test.cpp.o"
  "CMakeFiles/implementation_test.dir/implementation_test.cpp.o.d"
  "implementation_test"
  "implementation_test.pdb"
  "implementation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implementation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
