# Empty dependencies file for implementation_test.
# This may be replaced when dependencies are built.
