# Empty compiler generated dependencies file for example_mac_service.
# This may be replaced when dependencies are built.
