file(REMOVE_RECURSE
  "CMakeFiles/example_mac_service.dir/mac_service.cpp.o"
  "CMakeFiles/example_mac_service.dir/mac_service.cpp.o.d"
  "example_mac_service"
  "example_mac_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mac_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
