# Empty compiler generated dependencies file for example_dynamic_ledger.
# This may be replaced when dependencies are built.
