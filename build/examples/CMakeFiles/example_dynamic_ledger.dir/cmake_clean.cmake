file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_ledger.dir/dynamic_ledger.cpp.o"
  "CMakeFiles/example_dynamic_ledger.dir/dynamic_ledger.cpp.o.d"
  "example_dynamic_ledger"
  "example_dynamic_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
