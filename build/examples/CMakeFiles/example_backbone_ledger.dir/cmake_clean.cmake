file(REMOVE_RECURSE
  "CMakeFiles/example_backbone_ledger.dir/backbone_ledger.cpp.o"
  "CMakeFiles/example_backbone_ledger.dir/backbone_ledger.cpp.o.d"
  "example_backbone_ledger"
  "example_backbone_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backbone_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
