# Empty dependencies file for example_backbone_ledger.
# This may be replaced when dependencies are built.
