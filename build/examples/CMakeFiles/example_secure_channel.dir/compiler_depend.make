# Empty compiler generated dependencies file for example_secure_channel.
# This may be replaced when dependencies are built.
