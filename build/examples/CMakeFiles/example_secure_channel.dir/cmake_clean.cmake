file(REMOVE_RECURSE
  "CMakeFiles/example_secure_channel.dir/secure_channel.cpp.o"
  "CMakeFiles/example_secure_channel.dir/secure_channel.cpp.o.d"
  "example_secure_channel"
  "example_secure_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
