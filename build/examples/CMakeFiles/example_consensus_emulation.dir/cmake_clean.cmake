file(REMOVE_RECURSE
  "CMakeFiles/example_consensus_emulation.dir/consensus_emulation.cpp.o"
  "CMakeFiles/example_consensus_emulation.dir/consensus_emulation.cpp.o.d"
  "example_consensus_emulation"
  "example_consensus_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_consensus_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
