# Empty compiler generated dependencies file for example_consensus_emulation.
# This may be replaced when dependencies are built.
