# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example.quickstart PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.secure_channel "/root/repo/build/examples/example_secure_channel")
set_tests_properties(example.secure_channel PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dynamic_ledger "/root/repo/build/examples/example_dynamic_ledger")
set_tests_properties(example.dynamic_ledger PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.consensus_emulation "/root/repo/build/examples/example_consensus_emulation")
set_tests_properties(example.consensus_emulation PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.mac_service "/root/repo/build/examples/example_mac_service")
set_tests_properties(example.mac_service PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.backbone_ledger "/root/repo/build/examples/example_backbone_ledger")
set_tests_properties(example.backbone_ledger PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
