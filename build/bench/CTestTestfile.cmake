# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(experiment.bench_composition_bound "/root/repo/build/bench/bench_composition_bound")
set_tests_properties(experiment.bench_composition_bound PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_hiding_bound "/root/repo/build/bench/bench_hiding_bound")
set_tests_properties(experiment.bench_hiding_bound PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_transitivity "/root/repo/build/bench/bench_transitivity")
set_tests_properties(experiment.bench_transitivity PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_composability "/root/repo/build/bench/bench_composability")
set_tests_properties(experiment.bench_composability PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_dummy_adversary "/root/repo/build/bench/bench_dummy_adversary")
set_tests_properties(experiment.bench_dummy_adversary PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_secure_emulation "/root/repo/build/bench/bench_secure_emulation")
set_tests_properties(experiment.bench_secure_emulation PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_negligible_family "/root/repo/build/bench/bench_negligible_family")
set_tests_properties(experiment.bench_negligible_family PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_dynamic_creation "/root/repo/build/bench/bench_dynamic_creation")
set_tests_properties(experiment.bench_dynamic_creation PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_creation_monotonicity "/root/repo/build/bench/bench_creation_monotonicity")
set_tests_properties(experiment.bench_creation_monotonicity PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_dynamic_emulation "/root/repo/build/bench/bench_dynamic_emulation")
set_tests_properties(experiment.bench_dynamic_emulation PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_optimal_distinguisher "/root/repo/build/bench/bench_optimal_distinguisher")
set_tests_properties(experiment.bench_optimal_distinguisher PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_scheduler_ablation "/root/repo/build/bench/bench_scheduler_ablation")
set_tests_properties(experiment.bench_scheduler_ablation PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_cointoss "/root/repo/build/bench/bench_cointoss")
set_tests_properties(experiment.bench_cointoss PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(experiment.bench_backbone "/root/repo/build/bench/bench_backbone")
set_tests_properties(experiment.bench_backbone PROPERTIES  LABELS "experiment" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
