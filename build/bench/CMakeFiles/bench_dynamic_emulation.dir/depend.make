# Empty dependencies file for bench_dynamic_emulation.
# This may be replaced when dependencies are built.
