file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_emulation.dir/bench_dynamic_emulation.cpp.o"
  "CMakeFiles/bench_dynamic_emulation.dir/bench_dynamic_emulation.cpp.o.d"
  "bench_dynamic_emulation"
  "bench_dynamic_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
