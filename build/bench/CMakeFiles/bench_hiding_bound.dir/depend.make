# Empty dependencies file for bench_hiding_bound.
# This may be replaced when dependencies are built.
