file(REMOVE_RECURSE
  "CMakeFiles/bench_hiding_bound.dir/bench_hiding_bound.cpp.o"
  "CMakeFiles/bench_hiding_bound.dir/bench_hiding_bound.cpp.o.d"
  "bench_hiding_bound"
  "bench_hiding_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hiding_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
