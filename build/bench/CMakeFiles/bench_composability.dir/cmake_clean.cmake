file(REMOVE_RECURSE
  "CMakeFiles/bench_composability.dir/bench_composability.cpp.o"
  "CMakeFiles/bench_composability.dir/bench_composability.cpp.o.d"
  "bench_composability"
  "bench_composability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
