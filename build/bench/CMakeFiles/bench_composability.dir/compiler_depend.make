# Empty compiler generated dependencies file for bench_composability.
# This may be replaced when dependencies are built.
