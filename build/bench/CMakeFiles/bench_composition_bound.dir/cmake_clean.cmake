file(REMOVE_RECURSE
  "CMakeFiles/bench_composition_bound.dir/bench_composition_bound.cpp.o"
  "CMakeFiles/bench_composition_bound.dir/bench_composition_bound.cpp.o.d"
  "bench_composition_bound"
  "bench_composition_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composition_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
