# Empty compiler generated dependencies file for bench_composition_bound.
# This may be replaced when dependencies are built.
