# Empty compiler generated dependencies file for bench_optimal_distinguisher.
# This may be replaced when dependencies are built.
