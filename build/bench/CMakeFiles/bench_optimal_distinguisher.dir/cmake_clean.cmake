file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_distinguisher.dir/bench_optimal_distinguisher.cpp.o"
  "CMakeFiles/bench_optimal_distinguisher.dir/bench_optimal_distinguisher.cpp.o.d"
  "bench_optimal_distinguisher"
  "bench_optimal_distinguisher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_distinguisher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
