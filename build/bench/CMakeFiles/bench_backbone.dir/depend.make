# Empty dependencies file for bench_backbone.
# This may be replaced when dependencies are built.
