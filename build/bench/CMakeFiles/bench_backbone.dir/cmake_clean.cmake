file(REMOVE_RECURSE
  "CMakeFiles/bench_backbone.dir/bench_backbone.cpp.o"
  "CMakeFiles/bench_backbone.dir/bench_backbone.cpp.o.d"
  "bench_backbone"
  "bench_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
