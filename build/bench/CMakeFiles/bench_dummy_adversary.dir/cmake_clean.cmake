file(REMOVE_RECURSE
  "CMakeFiles/bench_dummy_adversary.dir/bench_dummy_adversary.cpp.o"
  "CMakeFiles/bench_dummy_adversary.dir/bench_dummy_adversary.cpp.o.d"
  "bench_dummy_adversary"
  "bench_dummy_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dummy_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
