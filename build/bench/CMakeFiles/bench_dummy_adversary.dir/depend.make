# Empty dependencies file for bench_dummy_adversary.
# This may be replaced when dependencies are built.
