file(REMOVE_RECURSE
  "CMakeFiles/bench_creation_monotonicity.dir/bench_creation_monotonicity.cpp.o"
  "CMakeFiles/bench_creation_monotonicity.dir/bench_creation_monotonicity.cpp.o.d"
  "bench_creation_monotonicity"
  "bench_creation_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_creation_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
