# Empty dependencies file for bench_creation_monotonicity.
# This may be replaced when dependencies are built.
