# Empty dependencies file for bench_negligible_family.
# This may be replaced when dependencies are built.
