file(REMOVE_RECURSE
  "CMakeFiles/bench_negligible_family.dir/bench_negligible_family.cpp.o"
  "CMakeFiles/bench_negligible_family.dir/bench_negligible_family.cpp.o.d"
  "bench_negligible_family"
  "bench_negligible_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_negligible_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
