file(REMOVE_RECURSE
  "CMakeFiles/bench_cointoss.dir/bench_cointoss.cpp.o"
  "CMakeFiles/bench_cointoss.dir/bench_cointoss.cpp.o.d"
  "bench_cointoss"
  "bench_cointoss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cointoss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
