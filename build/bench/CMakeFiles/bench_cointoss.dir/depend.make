# Empty dependencies file for bench_cointoss.
# This may be replaced when dependencies are built.
