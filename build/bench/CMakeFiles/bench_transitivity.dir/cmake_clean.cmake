file(REMOVE_RECURSE
  "CMakeFiles/bench_transitivity.dir/bench_transitivity.cpp.o"
  "CMakeFiles/bench_transitivity.dir/bench_transitivity.cpp.o.d"
  "bench_transitivity"
  "bench_transitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
