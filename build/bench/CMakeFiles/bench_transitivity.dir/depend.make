# Empty dependencies file for bench_transitivity.
# This may be replaced when dependencies are built.
