# Empty compiler generated dependencies file for bench_dynamic_creation.
# This may be replaced when dependencies are built.
