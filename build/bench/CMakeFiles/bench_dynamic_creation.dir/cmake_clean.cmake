file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_creation.dir/bench_dynamic_creation.cpp.o"
  "CMakeFiles/bench_dynamic_creation.dir/bench_dynamic_creation.cpp.o.d"
  "bench_dynamic_creation"
  "bench_dynamic_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
