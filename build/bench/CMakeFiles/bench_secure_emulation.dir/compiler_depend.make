# Empty compiler generated dependencies file for bench_secure_emulation.
# This may be replaced when dependencies are built.
