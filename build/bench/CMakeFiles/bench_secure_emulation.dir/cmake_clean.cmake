file(REMOVE_RECURSE
  "CMakeFiles/bench_secure_emulation.dir/bench_secure_emulation.cpp.o"
  "CMakeFiles/bench_secure_emulation.dir/bench_secure_emulation.cpp.o.d"
  "bench_secure_emulation"
  "bench_secure_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secure_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
